"""Property tests of the data-movement model on synthetic thread programs.

Builds random-but-structured access programs (not just the Stokes
kernels) and checks the invariants the simulator's conclusions rest on:
traffic is bounded below by compulsory traffic, monotone in cache
pressure, and equals the streaming optimum for single-pass programs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim.memtrace import measure_data_movement
from repro.gpusim.occupancy import Occupancy
from repro.gpusim.specs import A100, MI250X_GCD
from repro.gpusim.trace import Slot, ThreadProgram


def _program(slots, writes, key="synthetic"):
    return ThreadProgram(
        variant_key=key,
        accesses=[],
        slot_trace=slots,
        writes=list(writes),
        flops=10,
        mem_insts=len(slots),
        view_meta={},
        num_nodes=8,
        num_qps=8,
    )


def _occ(warps_per_cu=16.0, total=1000.0):
    return Occupancy(
        warps_per_cu=warps_per_cu,
        total_warps=total,
        fraction=0.5,
        num_blocks=100,
        threads_per_block=256,
        tail_efficiency=1.0,
    )


def _streaming_program(n, key):
    """Touch n distinct read slots once, write n distinct output slots."""
    slots = [Slot("in", i, 0) for i in range(n)] + [Slot("out", i, 0) for i in range(n)]
    writes = [False] * n + [True] * n
    return _program(slots, writes, key)


class TestStreaming:
    def test_single_pass_equals_compulsory(self):
        """A streaming program moves exactly reads + final writebacks."""
        for spec in (A100, MI250X_GCD):
            p = _streaming_program(50, f"stream-{spec.name}")
            dm = measure_data_movement(p, spec, _occ(), 256_000)
            L, line = spec.lines_per_access, spec.line_bytes
            per_warp = 50 * L * line  # reads
            assert dm.per_warp_read_bytes == pytest.approx(per_warp)
            assert dm.per_warp_write_bytes == pytest.approx(per_warp)
            assert dm.rmw_fraction == 0.0

    def test_rmw_program_detected(self):
        slots = []
        writes = []
        for i in range(10):
            for _ in range(4):  # read-modify-write x4 per slot
                slots += [Slot("acc", i, 0), Slot("acc", i, 0)]
                writes += [False, True]
        dm = measure_data_movement(_program(slots, writes, "rmw"), A100, _occ(), 1000)
        assert dm.rmw_fraction == 1.0


class TestRocprofReconciliation:
    """The appendix TCC_EA formula must reproduce the modeled bytes.

    Requests are whole 64 B transactions issued per warp (ceiling of the
    warp's byte traffic), and the reported totals are defined as 64 B per
    request -- truncating ``int(total / 64)`` made the formula fall short
    of ``total_bytes`` by up to 126 B per kernel.
    """

    @given(
        st.integers(2, 50),
        st.integers(1, 4),
        st.integers(1, 2_000_000),
        st.sampled_from(["A100", "MI250X"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_formula_reproduces_total_bytes(self, n, revisits, num_cells, gpu):
        spec = A100 if gpu == "A100" else MI250X_GCD
        rng = np.random.default_rng(n * 31 + revisits * 7 + num_cells % 997)
        base = [Slot("a", int(i), 0) for i in range(n)]
        trace, writes = [], []
        for _ in range(revisits):
            order = rng.permutation(n)
            trace += [base[i] for i in order]
            writes += [bool(rng.integers(0, 2)) for _ in range(n)]
        key = f"rocprof-{gpu}-{n}-{revisits}-{hash(tuple(writes)) & 0xFFFF}"
        dm = measure_data_movement(_program(trace, writes, key), spec, _occ(), num_cells)

        assert dm.rocprof_formula_bytes() == dm.total_bytes
        assert dm.total_bytes == 64.0 * (dm.read_requests + dm.write_requests)
        # per-warp ceilings: requests cover the raw modeled traffic and
        # overshoot by less than one request per warp and stream
        assert 64.0 * dm.read_requests >= dm.per_warp_read_bytes * dm.num_warps - 1e-6
        assert 64.0 * dm.read_requests < (dm.per_warp_read_bytes + 64.0) * dm.num_warps
        assert 64.0 * dm.write_requests >= dm.per_warp_write_bytes * dm.num_warps - 1e-6
        assert 64.0 * dm.write_requests < (dm.per_warp_write_bytes + 64.0) * dm.num_warps

    def test_zero_traffic_zero_requests(self):
        # a single read slot re-read in cache: writes never happen, so
        # write requests must be exactly zero (no spurious ceiling)
        trace = [Slot("a", 0, 0)] * 4
        writes = [False] * 4
        dm = measure_data_movement(_program(trace, writes, "zero-wr"), A100, _occ(), 1000)
        assert dm.write_requests == 0
        assert dm.write_bytes == 0.0
        assert dm.rocprof_formula_bytes() == dm.total_bytes


class TestMonotonicity:
    @given(st.integers(5, 60), st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_traffic_at_least_compulsory(self, n, revisits):
        rng = np.random.default_rng(n * 7 + revisits)
        base = [Slot("a", int(i), 0) for i in range(n)]
        trace = []
        writes = []
        for _ in range(revisits):
            order = rng.permutation(n)
            trace += [base[i] for i in order]
            writes += [bool(rng.integers(0, 2)) for _ in range(n)]
        key = f"rand-{n}-{revisits}-{hash(tuple(writes)) & 0xFFFF}"
        dm = measure_data_movement(_program(trace, writes, key), MI250X_GCD, _occ(), 64_000)
        L, line = MI250X_GCD.lines_per_access, MI250X_GCD.line_bytes
        reads_compulsory = sum(1 for s, w in zip(trace[:n], writes[:n]) if not w)
        assert dm.per_warp_read_bytes >= reads_compulsory * L * line - 1e-9

    def test_more_concurrency_never_less_traffic(self):
        """Higher effective interleave -> equal or more HBM traffic."""
        n = 400
        rng = np.random.default_rng(0)
        base = [Slot("a", int(i), 0) for i in range(n)]
        trace, writes = [], []
        for r in range(3):
            trace += base
            writes += [False] * n
        prev = None
        for total_warps, tag in ((10.0, "lo"), (1000.0, "mid"), (100000.0, "hi")):
            p = _program(list(trace), writes, f"conc-{tag}")
            dm = measure_data_movement(p, MI250X_GCD, _occ(total=total_warps), 64_000)
            if prev is not None:
                assert dm.total_bytes >= prev - 1e-6
            prev = dm.total_bytes

    def test_bigger_cache_never_more_traffic(self):
        import dataclasses

        n = 400
        base = [Slot("a", int(i), 0) for i in range(n)]
        trace = base * 3
        writes = [False] * len(trace)
        prev = None
        for mb, tag in ((1, "s"), (8, "m"), (64, "l")):
            spec = dataclasses.replace(MI250X_GCD, l2_bytes=mb * 1024 * 1024)
            p = _program(list(trace), writes, f"cache-{tag}")
            dm = measure_data_movement(p, spec, _occ(), 64_000)
            if prev is not None:
                assert dm.total_bytes <= prev + 1e-6
            prev = dm.total_bytes
