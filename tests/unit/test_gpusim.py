"""Tests for the GPU performance simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.launch import TABLE2_LAUNCH_CONFIGS, default_launch_bounds
from repro.core.variants import get_variant
from repro.gpusim import (
    A100,
    MI250X_GCD,
    ALL_GPUS,
    GPUSimulator,
    ProblemSize,
    ANTARCTICA_16KM,
    record_kernel_trace,
    stack_distances,
    LruCache,
    measure_data_movement,
    allocate_registers,
    compute_occupancy,
    achieved_bandwidth_fraction,
)
from repro.gpusim.memtrace import smooth_hit_fraction
from repro.kokkos.policy import LaunchBounds
from repro.perf.theoretical import theoretical_minimum


class TestSpecs:
    def test_paper_hardware_numbers(self):
        assert A100.num_cus == 108
        assert A100.l2_bytes == 40 * 1024 * 1024
        assert MI250X_GCD.num_cus == 110
        assert MI250X_GCD.l2_bytes == 8 * 1024 * 1024
        # MI250X GCD: >2x FP64 peak, comparable BW (Section IV-A)
        assert MI250X_GCD.fp64_flops > 2 * A100.fp64_flops
        assert abs(MI250X_GCD.hbm_bytes_per_s / A100.hbm_bytes_per_s - 1.0) < 0.1

    def test_derived_quantities(self):
        assert A100.lines_per_access == 2  # 32 lanes x 8B / 128B
        assert MI250X_GCD.lines_per_access == 8  # 64 lanes x 8B / 64B
        assert A100.max_warps_per_cu == 64
        assert MI250X_GCD.max_warps_per_cu == 32


class TestTrace:
    def test_trace_cached(self):
        a = record_kernel_trace("optimized-residual")
        b = record_kernel_trace("optimized-residual")
        assert a is b

    def test_baseline_has_more_accesses(self):
        b = record_kernel_trace("baseline-jacobian")
        o = record_kernel_trace("optimized-jacobian")
        assert len(b.slot_trace) > len(o.slot_trace)

    def test_jacobian_meshfields_are_fad(self):
        p = record_kernel_trace("optimized-jacobian")
        assert p.view_meta["wGradBF"][1] == 17
        assert p.view_meta["Ugrad"][1] == 17
        pr = record_kernel_trace("optimized-residual")
        assert pr.view_meta["wGradBF"][1] == 1

    def test_unique_written_slots_residual_only(self):
        p = record_kernel_trace("optimized-residual")
        assert {s.view for s in p.unique_written_slots()} == {"Residual"}
        # 8 nodes x 2 comps x 1 component
        assert len(p.unique_written_slots()) == 16

    def test_instruction_estimate_ordering(self):
        p = record_kernel_trace("baseline-residual")
        rt = p.instructions(compile_time_bounds=False, branch_in_kernel=True)
        ct = p.instructions(compile_time_bounds=True, branch_in_kernel=False)
        assert rt > ct


class TestCacheModels:
    def test_stack_distance_basic(self):
        d = stack_distances(["a", "b", "a", "c", "b", "a"])
        assert list(d) == [-1, -1, 1, -1, 2, 2]

    def test_lru_cache_basic(self):
        c = LruCache(2)
        assert not c.access("a")
        assert not c.access("b")
        assert c.access("a")
        assert not c.access("c")  # evicts b
        assert not c.access("b")

    def test_lru_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)

    @given(st.lists(st.integers(0, 12), min_size=1, max_size=300), st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_stack_distance_equals_lru_property(self, keys, cap):
        """LRU hit <=> stack distance < capacity (the classic theorem)."""
        d = stack_distances(keys)
        c = LruCache(cap)
        for k, dist in zip(keys, d):
            hit = c.access(k)
            assert hit == (0 <= dist < cap)

    def test_smooth_hit_fraction_shape(self):
        cap = 1000.0
        assert smooth_hit_fraction(0.0, cap) == 1.0
        assert smooth_hit_fraction(400.0, cap) == 1.0
        assert smooth_hit_fraction(5000.0, cap) == 0.0
        mid = smooth_hit_fraction(1000.0, cap)
        assert 0.0 < mid < 1.0
        # monotone decreasing
        xs = np.linspace(0, 3000, 50)
        fr = [smooth_hit_fraction(x, cap) for x in xs]
        assert all(a >= b for a, b in zip(fr, fr[1:]))


class TestDataMovement:
    def _dm(self, variant, spec, ncells=256_000, bounds=None):
        v = get_variant(variant)
        program = record_kernel_trace(variant)
        alloc = allocate_registers(spec, v, bounds or default_launch_bounds(v.mode))
        occ = compute_occupancy(spec, alloc, ncells)
        return measure_data_movement(program, spec, occ, ncells)

    @pytest.mark.parametrize("spec", [A100, MI250X_GCD], ids=lambda s: s.name)
    @pytest.mark.parametrize("mode", ["jacobian", "residual"])
    def test_measured_at_least_theoretical(self, spec, mode):
        th = theoretical_minimum(f"optimized-{mode}", 256_000)
        for impl in ("baseline", "optimized"):
            dm = self._dm(f"{impl}-{mode}", spec)
            assert dm.total_bytes >= th.total_bytes * 0.999

    @pytest.mark.parametrize("spec", [A100, MI250X_GCD], ids=lambda s: s.name)
    def test_optimized_moves_less_than_baseline(self, spec):
        """Cache-model traffic: optimized <= baseline, strictly for Jacobian.

        On the MI250X the optimized kernels are run at the paper's tuned
        LaunchBounds (Table III quotes the tuned times); the default
        bounds force the tight register allocation whose scratch spill is
        accounted separately in the timing model, not here.
        """
        tuned = LaunchBounds(128, 2) if spec.vendor == "amd" else None
        for mode in ("jacobian", "residual"):
            b = self._dm(f"baseline-{mode}", spec)
            o = self._dm(f"optimized-{mode}", spec, bounds=tuned)
            assert o.total_bytes <= b.total_bytes * (1 + 1e-12)
        bj = self._dm("baseline-jacobian", spec)
        oj = self._dm("optimized-jacobian", spec, bounds=tuned)
        assert oj.total_bytes < bj.total_bytes

    def test_traffic_scales_linearly_with_cells(self):
        a = self._dm("optimized-residual", A100, ncells=64_000)
        b = self._dm("optimized-residual", A100, ncells=128_000)
        assert b.total_bytes == pytest.approx(2 * a.total_bytes, rel=1e-6)

    def test_rmw_fraction_baseline_high_optimized_zero(self):
        b = self._dm("baseline-residual", A100)
        o = self._dm("optimized-residual", A100)
        assert b.rmw_fraction > 0.5
        assert o.rmw_fraction == 0.0

    def test_rocprof_formula_close_to_total(self):
        dm = self._dm("baseline-jacobian", MI250X_GCD)
        assert dm.rocprof_formula_bytes() == pytest.approx(dm.total_bytes, rel=0.01)

    @pytest.mark.parametrize("spec", [A100, MI250X_GCD], ids=lambda s: s.name)
    @pytest.mark.parametrize(
        "variant",
        ["baseline-jacobian", "optimized-jacobian", "baseline-residual", "optimized-residual"],
    )
    def test_rocprof_formula_reconciles_exactly(self, spec, variant):
        """Requests round up per warp and bytes are 64 B per request, so
        the appendix TCC_EA formula reproduces the modeled bytes exactly
        (truncating ``int(total/64)`` used to lose up to 126 B)."""
        dm = self._dm(variant, spec, ncells=100_003)  # non-round warp count
        assert dm.rocprof_formula_bytes() == dm.total_bytes
        assert dm.read_requests % dm.num_warps == 0
        assert dm.write_requests % dm.num_warps == 0
        assert 64.0 * dm.read_requests >= dm.per_warp_read_bytes * dm.num_warps
        assert 64.0 * dm.write_requests >= dm.per_warp_write_bytes * dm.num_warps

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            self._dm("optimized-residual", A100, ncells=0)


class TestRegisters:
    """The CDNA2 allocator must reproduce all ten Table II cells."""

    TABLE2_JAC = {  # bounds str -> (arch, accum)
        "default": (128, 0),
        "128,2": (128, 128),
        "128,4": (128, 0),
        "256,2": (128, 128),
        "1024,2": (128, 0),
    }
    TABLE2_RES = {
        "default": (84, 4),
        "128,2": (128, 0),
        "128,4": (84, 4),
        "256,2": (128, 0),
        "1024,2": (84, 4),
    }

    @pytest.mark.parametrize("mode,table", [("jacobian", TABLE2_JAC), ("residual", TABLE2_RES)])
    def test_table2_vgprs(self, mode, table):
        v = get_variant(f"optimized-{mode}")
        for lb in TABLE2_LAUNCH_CONFIGS:
            eff = lb if lb.explicit else default_launch_bounds(mode)
            alloc = allocate_registers(MI250X_GCD, v, eff)
            assert (alloc.arch_vgprs, alloc.accum_vgprs) == table[str(lb)], str(lb)

    def test_jacobian_tight_spills_to_scratch(self):
        v = get_variant("optimized-jacobian")
        alloc = allocate_registers(MI250X_GCD, v, default_launch_bounds("jacobian"))
        assert alloc.scratch_bytes > 0
        alloc2 = allocate_registers(MI250X_GCD, v, LaunchBounds(128, 2))
        assert alloc2.scratch_bytes == 0

    def test_nvidia_ignores_min_blocks(self):
        v = get_variant("optimized-jacobian")
        a = allocate_registers(A100, v, LaunchBounds(128, 1))
        b = allocate_registers(A100, v, LaunchBounds(128, 4))
        assert a.arch_vgprs == b.arch_vgprs == v.cuda_regs
        assert a.max_warps_per_cu == b.max_warps_per_cu

    def test_nvidia_default_block_128(self):
        v = get_variant("optimized-residual")
        alloc = allocate_registers(A100, v, default_launch_bounds("residual"))
        assert alloc.threads_per_block == 128  # paper: CUDA default block


class TestOccupancyAndBandwidth:
    def test_occupancy_fraction_bounds(self):
        for spec in ALL_GPUS.values():
            for key in ("baseline-residual", "optimized-jacobian"):
                v = get_variant(key)
                alloc = allocate_registers(spec, v, default_launch_bounds(v.mode))
                occ = compute_occupancy(spec, alloc, 256_000)
                assert 0.0 < occ.fraction <= 1.0
                assert 0.0 < occ.tail_efficiency <= 1.0

    def test_tail_efficiency_exact_fit(self):
        v = get_variant("optimized-residual")
        alloc = allocate_registers(A100, v, LaunchBounds(128, 1))
        occ_small = compute_occupancy(A100, alloc, 128)  # one block
        assert occ_small.num_blocks == 1

    def test_bandwidth_monotone_in_occupancy(self):
        fr = [achieved_bandwidth_fraction(A100, o) for o in (0.05, 0.2, 0.5, 1.0)]
        assert all(a < b for a, b in zip(fr, fr[1:]))
        assert fr[-1] <= A100.bw_max_fraction

    def test_rmw_penalty_reduces_bandwidth(self):
        a = achieved_bandwidth_fraction(A100, 0.5, rmw_fraction=0.0)
        b = achieved_bandwidth_fraction(A100, 0.5, rmw_fraction=0.9)
        assert b < a

    def test_bandwidth_input_validation(self):
        with pytest.raises(ValueError):
            achieved_bandwidth_fraction(A100, 1.5)
        with pytest.raises(ValueError):
            achieved_bandwidth_fraction(A100, 0.5, rmw_fraction=2.0)


class TestOccupancyValidation:
    def _alloc(self, tpb):
        from repro.gpusim.registers import Allocation

        return Allocation(
            arch_vgprs=128,
            accum_vgprs=0,
            scratch_bytes=0,
            issue_penalty=1.0,
            profile="tight",
            threads_per_block=tpb,
            max_warps_per_cu=32.0,
        )

    @pytest.mark.parametrize("spec", [A100, MI250X_GCD], ids=lambda s: s.name)
    def test_oversized_block_rejected(self, spec):
        """threads_per_block beyond the CU limit is unlaunchable on real
        hardware; it used to be silently clamped and simulated anyway."""
        with pytest.raises(ValueError, match="cannot run on real hardware"):
            compute_occupancy(spec, self._alloc(spec.max_threads_per_cu + 1), 256_000)

    @pytest.mark.parametrize("spec", [A100, MI250X_GCD], ids=lambda s: s.name)
    def test_limit_block_accepted(self, spec):
        occ = compute_occupancy(spec, self._alloc(spec.max_threads_per_cu), 256_000)
        assert occ.threads_per_block == spec.max_threads_per_cu


class TestKernelProfilePeakBandwidth:
    def test_peak_bandwidth_is_required(self):
        import dataclasses

        from repro.gpusim.simulator import KernelProfile

        p = GPUSimulator(A100).run("optimized-residual")
        assert p.peak_bandwidth == A100.hbm_bytes_per_s
        kwargs = {
            f.name: getattr(p, f.name)
            for f in dataclasses.fields(p)
            if f.name != "peak_bandwidth"
        }
        with pytest.raises(TypeError):
            KernelProfile(**kwargs)

    def test_zero_peak_bandwidth_rejected(self):
        import dataclasses

        p = GPUSimulator(A100).run("optimized-residual")
        with pytest.raises(ValueError, match="peak_bandwidth"):
            dataclasses.replace(p, peak_bandwidth=0.0)

    def test_bandwidth_fraction_well_defined(self):
        p = GPUSimulator(MI250X_GCD).run("baseline-jacobian")
        assert p.bandwidth_fraction_of_peak == pytest.approx(
            (p.hbm_bytes / p.time_s) / MI250X_GCD.hbm_bytes_per_s
        )
        assert 0.0 < p.bandwidth_fraction_of_peak <= 1.0


class TestSimulator:
    @pytest.mark.parametrize("spec", [A100, MI250X_GCD], ids=lambda s: s.name)
    def test_optimized_faster_than_baseline(self, spec):
        sim = GPUSimulator(spec)
        for mode in ("jacobian", "residual"):
            b = sim.run(f"baseline-{mode}")
            o = sim.run(f"optimized-{mode}")
            assert 1.5 < b.time_s / o.time_s < 6.0

    def test_jacobian_slower_than_residual(self):
        sim = GPUSimulator(A100)
        j = sim.run("optimized-jacobian")
        r = sim.run("optimized-residual")
        assert j.time_s > 5 * r.time_s

    def test_profile_fields_consistent(self):
        sim = GPUSimulator(A100)
        p = sim.run("optimized-jacobian")
        assert p.arithmetic_intensity == pytest.approx(p.flops / p.hbm_bytes)
        assert p.gflops_per_s == pytest.approx(p.flops / p.time_s / 1e9)
        assert 0 < p.bandwidth_fraction_of_peak <= 1.0

    def test_determinism(self):
        sim = GPUSimulator(MI250X_GCD)
        a = sim.run("baseline-jacobian")
        b = sim.run("baseline-jacobian")
        assert a.time_s == b.time_s
        assert a.hbm_bytes == b.hbm_bytes

    def test_run_all_variants(self):
        out = GPUSimulator(A100).run_all_variants(ProblemSize(64_000))
        assert {
            "baseline-jacobian",
            "baseline-residual",
            "optimized-jacobian",
            "optimized-residual",
        } <= set(out)

    def test_problem_size_validation(self):
        with pytest.raises(ValueError):
            ProblemSize(0)
        assert ANTARCTICA_16KM.num_cells == 256_000

    def test_time_respects_architectural_bound(self):
        """No kernel may run faster than its bytes at peak bandwidth."""
        for spec in ALL_GPUS.values():
            sim = GPUSimulator(spec)
            for key in ("baseline-jacobian", "optimized-jacobian", "optimized-residual"):
                p = sim.run(key)
                assert p.time_s >= p.hbm_bytes / spec.hbm_bytes_per_s * 0.999
