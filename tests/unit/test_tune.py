"""Unit tests for the autotuner: space, prior, cache, trial queue.

The measured-trial loop over real solves lives in
``tests/integration/test_tuned_solve.py``; everything here runs without
a single Newton step.
"""

import dataclasses
import json

from repro.app.config import VelocityConfig
from repro.core.launch import TABLE2_LAUNCH_CONFIGS
from repro.gpusim.specs import MI250X_GCD, default_tuning_spec
from repro.kokkos.policy import LaunchBounds
from repro.observability import get_metrics
from repro.tune import (
    DEFAULT_SPACE,
    SCHEMA_VERSION,
    AutoTuner,
    GpusimPrior,
    ProblemModel,
    TuneCache,
    TuneCandidate,
    TuneRecord,
    cache_key,
    candidate_from_config,
)

#: small synthetic mesh stats, enough for the byte model to price
MODEL = ProblemModel(num_dofs=600, num_cells=240, nnz=14_000, dofs_per_elem=24)


def _candidate(**overrides) -> TuneCandidate:
    base = dict(
        kernel_impl="optimized",
        launch_bounds=LaunchBounds(128, 2),
        preconditioner="mdsc",
        operator_mode="assembled",
        gmres_orth="mgs",
        gmres_restart=30,
    )
    base.update(overrides)
    return TuneCandidate(**base)


class TestSpace:
    def test_enumeration_is_deterministic(self):
        spec = default_tuning_spec()
        first = DEFAULT_SPACE.enumerate(spec)
        second = DEFAULT_SPACE.enumerate(spec)
        assert first == second
        assert len(first) > 100  # the cross product is a real space

    def test_mdsc_amg_never_pairs_with_matrix_free(self):
        space = dataclasses.replace(
            DEFAULT_SPACE, preconditioners=("mdsc", "mdsc-amg")
        )
        cands = space.enumerate(MI250X_GCD)
        assert any(c.preconditioner == "mdsc-amg" for c in cands)
        assert not any(
            c.preconditioner == "mdsc-amg" and c.operator_mode == "matrix-free"
            for c in cands
        )

    def test_unlaunchable_bounds_filtered_by_spec(self):
        low = dataclasses.replace(MI250X_GCD, max_threads_per_cu=512)
        cands = DEFAULT_SPACE.enumerate(low)
        assert cands, "some configs must survive even on a small CU"
        for c in cands:
            for mode in ("jacobian", "residual"):
                assert c.effective_launch_bounds(mode).max_threads <= 512
        # the 1024-thread Table II column and the implicit residual
        # default (1024) are both gone
        assert not any(
            c.launch_bounds.max_threads > 512 and c.launch_bounds.explicit
            for c in cands
        )

    def test_candidate_dict_round_trip(self):
        c = _candidate(launch_bounds=TABLE2_LAUNCH_CONFIGS[0])  # implicit default
        assert TuneCandidate.from_dict(json.loads(json.dumps(c.to_dict()))) == c

    def test_apply_to_preserves_untuned_fields(self):
        cfg = VelocityConfig(newton_tol=1.0e-9, nparts=2, tuned="auto")
        out = _candidate(preconditioner="vline", gmres_restart=100).apply_to(cfg)
        assert out.preconditioner == "vline"
        assert out.gmres_restart == 100
        assert out.newton_tol == 1.0e-9
        assert out.nparts == 2
        assert out.tuned == "auto"

    def test_candidate_from_config_resolves_auto_orth(self):
        mf = candidate_from_config(VelocityConfig(operator_mode="matrix-free"))
        asm = candidate_from_config(VelocityConfig(operator_mode="assembled"))
        assert mf.gmres_orth == "fused"
        assert asm.gmres_orth == "mgs"


class TestPrior:
    def test_rank_is_deterministic_and_complete(self):
        prior = GpusimPrior(MI250X_GCD, MODEL)
        cands = DEFAULT_SPACE.enumerate(MI250X_GCD)[:40]
        a = [s.candidate for s in prior.rank(cands)]
        b = [s.candidate for s in GpusimPrior(MI250X_GCD, MODEL).rank(cands)]
        assert a == b
        assert sorted(map(id, a)) == sorted(map(id, cands))

    def test_stronger_preconditioner_ranks_cheaper(self):
        prior = GpusimPrior(MI250X_GCD, MODEL)
        mdsc = prior.score(_candidate(preconditioner="mdsc"))
        jacobi = prior.score(_candidate(preconditioner="jacobi"))
        assert mdsc.solver_bytes_per_step < jacobi.solver_bytes_per_step
        assert mdsc.est_iterations_per_step < jacobi.est_iterations_per_step

    def test_kernel_profiles_memoized(self):
        prior = GpusimPrior(MI250X_GCD, MODEL)
        c = _candidate()
        assert prior.kernel_profile(c, "jacobian") is prior.kernel_profile(c, "jacobian")


class TestCache:
    def _record(self) -> TuneRecord:
        return TuneRecord(
            candidate=_candidate(),
            cost_bytes=1.5e9,
            gmres_iterations=420,
            trials=5,
            default_cost_bytes=2.0e9,
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "tuned.json"
        cache = TuneCache(path)
        key = cache_key("antarctica_res400km_nz4_optimized", "MI250X-GCD")
        cache.put(key, self._record())
        cache.save()

        reloaded = TuneCache(path)
        rec = reloaded.get(key)
        assert rec == self._record()
        assert get_metrics().value("tune.cache.hits") >= 1

    def test_miss_counts(self, tmp_path):
        cache = TuneCache(tmp_path / "tuned.json")
        before = get_metrics().value("tune.cache.misses")
        assert cache.get("nope|A100") is None
        assert get_metrics().value("tune.cache.misses") == before + 1

    def test_stale_schema_version_ignored(self, tmp_path):
        path = tmp_path / "tuned.json"
        cache = TuneCache(path)
        key = cache_key("mesh", "MI250X-GCD")
        cache.put(key, self._record())
        cache.save()
        doc = json.loads(path.read_text())
        doc["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))

        before = get_metrics().value("tune.cache.stale")
        stale = TuneCache(path)
        assert stale.get(key) is None
        assert get_metrics().value("tune.cache.stale") > before

    def test_stale_entry_version_ignored(self, tmp_path):
        path = tmp_path / "tuned.json"
        cache = TuneCache(path)
        cache.put("old|GPU", self._record())
        cache.put("new|GPU", self._record())
        cache.save()
        doc = json.loads(path.read_text())
        doc["entries"]["old|GPU"]["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(doc))

        reloaded = TuneCache(path)
        assert reloaded.get("old|GPU") is None
        assert reloaded.get("new|GPU") is not None

    def test_corrupt_cache_never_crashes(self, tmp_path):
        path = tmp_path / "tuned.json"
        for garbage in ("{not json", '["wrong", "shape"]', '{"entries": 7}'):
            path.write_text(garbage)
            before = get_metrics().value("tune.cache.invalid")
            cache = TuneCache(path)  # must not raise
            assert len(cache) == 0
            assert get_metrics().value("tune.cache.invalid") == before + 1

    def test_corrupt_entry_dropped_not_fatal(self, tmp_path):
        path = tmp_path / "tuned.json"
        cache = TuneCache(path)
        cache.put("good|GPU", self._record())
        cache.save()
        doc = json.loads(path.read_text())
        doc["entries"]["bad|GPU"] = {"schema_version": SCHEMA_VERSION, "config": {}}
        path.write_text(json.dumps(doc))

        before = get_metrics().value("tune.cache.invalid")
        reloaded = TuneCache(path)
        assert reloaded.get("good|GPU") is not None
        assert reloaded.get("bad|GPU") is None
        assert get_metrics().value("tune.cache.invalid") == before + 1

    def test_save_is_atomic(self, tmp_path):
        path = tmp_path / "tuned.json"
        cache = TuneCache(path)
        cache.put("k|GPU", self._record())
        cache.save()
        assert not path.with_name(path.name + ".tmp").exists()
        assert json.loads(path.read_text())["schema_version"] == SCHEMA_VERSION


class TestTrialQueue:
    """Queue construction is pure given (space, prior, seed) -- no solves."""

    def _tuner(self, seed: int, tmp_path, budget: int = 5) -> AutoTuner:
        return AutoTuner(
            problem_factory=None,  # queue construction never builds a problem
            base_config=VelocityConfig(),
            mesh_key="unit",
            spec=MI250X_GCD,
            cache=TuneCache(tmp_path / f"c{seed}.json"),
            budget=budget,
            seed=seed,
        )

    def _queue(self, seed: int, tmp_path):
        tuner = self._tuner(seed, tmp_path)
        prior = GpusimPrior(MI250X_GCD, MODEL)
        cands = tuner._candidates()
        axes = tuner._best_kernel_axes(cands, prior)
        return tuner._trial_queue(cands, prior, axes), cands

    def test_same_seed_same_queue(self, tmp_path):
        q1, _ = self._queue(7, tmp_path)
        q2, _ = self._queue(7, tmp_path)
        assert [c.describe() for c in q1] == [c.describe() for c in q2]

    def test_default_config_always_first(self, tmp_path):
        queue, _ = self._queue(0, tmp_path)
        assert queue[0] == candidate_from_config(VelocityConfig())
        assert len(queue) == 5
        # distinct solver axes: no wasted trial measures the same
        # Newton--Krylov trajectory twice
        axes = [c.solver_axes for c in queue]
        assert len(set(axes)) == len(axes)

    def test_spmd_base_config_drops_matrix_free(self, tmp_path):
        tuner = AutoTuner(
            problem_factory=None,
            base_config=VelocityConfig(nparts=4),
            mesh_key="unit-spmd",
            spec=MI250X_GCD,
            cache=TuneCache(tmp_path / "spmd.json"),
        )
        assert all(c.operator_mode == "assembled" for c in tuner._candidates())
