"""Property tests for FE assembly: AssemblyPlan vs direct assembly.

Hypothesis generates random small meshes (arbitrary connectivity,
including degenerate elements that repeat a node) and checks that the
cached symbolic plan, the one-shot COO path, and a dense scipy
reference all agree -- and that repeated numeric fills on one plan are
bitwise-stable.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.assembly import (
    AssemblyPlan,
    apply_dirichlet,
    assemble_matrix,
    assemble_vector,
    build_sparsity,
)
from repro.fem.dofmap import DofMap


@st.composite
def dofmaps(draw):
    """Random small dof maps: nodes, vector dofs, arbitrary connectivity."""
    num_nodes = draw(st.integers(min_value=1, max_value=10))
    ndof = draw(st.integers(min_value=1, max_value=3))
    nc = draw(st.integers(min_value=1, max_value=6))
    nn = draw(st.integers(min_value=1, max_value=4))
    elems = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=num_nodes - 1), min_size=nn, max_size=nn),
            min_size=nc,
            max_size=nc,
        )
    )
    return DofMap(num_nodes=num_nodes, ndof_per_node=ndof, elems=np.array(elems))


def _local_blocks(dofmap, seed):
    rng = np.random.default_rng(seed)
    nc, k = dofmap.elem_dofs().shape
    jac = rng.normal(size=(nc, k, k)) * 10.0 ** rng.uniform(-3, 3, size=(nc, 1, 1))
    res = rng.normal(size=(nc, k))
    return jac, res


def _dense_reference(dofmap, local_jac):
    """Direct triple-loop scatter into a dense matrix."""
    n = dofmap.num_dofs
    ed = dofmap.elem_dofs()
    dense = np.zeros((n, n))
    for c in range(len(ed)):
        for i, gi in enumerate(ed[c]):
            for j, gj in enumerate(ed[c]):
                dense[gi, gj] += local_jac[c, i, j]
    return dense


class TestPlanEqualsDirect:
    @given(dofmaps(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_matrix_matches_one_shot_and_dense(self, dofmap, seed):
        jac, _ = _local_blocks(dofmap, seed)
        plan = AssemblyPlan(dofmap)
        from_plan = plan.assemble_matrix(jac)
        one_shot = assemble_matrix(dofmap, jac)
        dense = _dense_reference(dofmap, jac)
        # identical CSR structure; the two paths sum duplicates in
        # different orders, so data agrees to rounding, not bitwise
        # (bitwise stability is a per-path property -- TestPlanCacheReuse)
        np.testing.assert_array_equal(from_plan.indptr, one_shot.indptr)
        np.testing.assert_array_equal(from_plan.indices, one_shot.indices)
        np.testing.assert_allclose(from_plan.data, one_shot.data, rtol=1e-12, atol=1e-300)
        # the dense loop sums in a different order: tolerance, not bitwise
        np.testing.assert_allclose(from_plan.toarray(), dense, rtol=1e-12, atol=1e-300)

    @given(dofmaps(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_vector_matches_one_shot(self, dofmap, seed):
        _, res = _local_blocks(dofmap, seed)
        plan = AssemblyPlan(dofmap)
        np.testing.assert_array_equal(plan.assemble_vector(res), assemble_vector(dofmap, res))

    @given(dofmaps())
    @settings(max_examples=40, deadline=None)
    def test_sparsity_pattern_consistent(self, dofmap):
        rows, cols = build_sparsity(dofmap)
        plan = AssemblyPlan(dofmap)
        assert plan.nnz == len(set(zip(rows.tolist(), cols.tolist())))
        assert plan.indptr[-1] == plan.nnz
        # every row's column indices are sorted (CSR canonical form)
        for r in range(dofmap.num_dofs):
            seg = plan.indices[plan.indptr[r] : plan.indptr[r + 1]]
            assert np.all(np.diff(seg) > 0)


class TestPlanCacheReuse:
    @given(dofmaps(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_refill_is_bitwise_stable(self, dofmap, seed):
        """Same coefficients through a cached plan -> identical bits."""
        jac, res = _local_blocks(dofmap, seed)
        plan = AssemblyPlan(dofmap)
        a = plan.assemble_matrix(jac)
        b = plan.assemble_matrix(jac.copy())
        np.testing.assert_array_equal(a.data, b.data)
        assert a.indptr is plan.indptr and b.indptr is plan.indptr
        assert a.indices is plan.indices and b.indices is plan.indices
        assert plan.num_matrix_fills == 2
        np.testing.assert_array_equal(plan.assemble_vector(res), plan.assemble_vector(res.copy()))

    @given(dofmaps(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_perturbed_refill_matches_fresh_plan(self, dofmap, seed):
        """Numeric fills with new coefficients never depend on fill history."""
        jac1, _ = _local_blocks(dofmap, seed)
        jac2 = jac1 * 1.7 + 0.3
        plan = AssemblyPlan(dofmap)
        plan.assemble_matrix(jac1)  # warm the plan with different numbers
        reused = plan.assemble_matrix(jac2)
        fresh = AssemblyPlan(dofmap).assemble_matrix(jac2)
        np.testing.assert_array_equal(reused.data, fresh.data)
        np.testing.assert_array_equal(reused.indices, fresh.indices)


class TestDirichletPath:
    @given(dofmaps(), st.integers(min_value=0, max_value=2**31), st.data())
    @settings(max_examples=40, deadline=None)
    def test_fused_bc_matches_apply_dirichlet(self, dofmap, seed, data):
        jac, res = _local_blocks(dofmap, seed)
        nbc = data.draw(st.integers(min_value=0, max_value=dofmap.num_dofs))
        bc_dofs = np.array(
            sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=dofmap.num_dofs - 1),
                        min_size=nbc,
                        max_size=nbc,
                    )
                )
            ),
            dtype=np.int64,
        )
        plan = AssemblyPlan(dofmap, bc_dofs=bc_dofs)
        fused = plan.assemble_matrix(jac, diag_scale=2.5)
        unfused = plan.assemble_matrix(jac)
        rhs = plan.assemble_vector(res)
        via_apply, _ = apply_dirichlet(unfused, rhs, bc_dofs, diag_scale=2.5)
        np.testing.assert_array_equal(fused.toarray(), via_apply.toarray())


class TestPlanValidation:
    def _map(self):
        return DofMap(num_nodes=4, ndof_per_node=2, elems=np.array([[0, 1], [2, 3]]))

    def test_shape_mismatch_rejected(self):
        plan = AssemblyPlan(self._map())
        with pytest.raises(ValueError):
            plan.assemble_matrix(np.zeros((2, 3, 3)))
        with pytest.raises(ValueError):
            plan.assemble_vector(np.zeros((3, 4)))

    def test_diag_scale_without_bcs_rejected(self):
        plan = AssemblyPlan(self._map())
        with pytest.raises(ValueError, match="without Dirichlet"):
            plan.assemble_matrix(np.zeros((2, 4, 4)), diag_scale=1.0)

    def test_nonpositive_diag_scale_rejected(self):
        plan = AssemblyPlan(self._map(), bc_dofs=np.array([0]))
        with pytest.raises(ValueError, match="positive"):
            plan.assemble_matrix(np.zeros((2, 4, 4)), diag_scale=0.0)

    def test_bc_dof_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            AssemblyPlan(self._map(), bc_dofs=np.array([99]))
