"""Tests for the thickness-evolution substrate (Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import quad_footprint
from repro.physics import ThicknessEvolver


def _setup(n=8):
    fp = quad_footprint(n, n, 1.0e5, 1.0e5)
    return fp, ThicknessEvolver(fp)


class TestThicknessEvolver:
    def test_zero_velocity_only_smb(self):
        fp, ev = _setup()
        h = np.full(fp.num_elems, 100.0)
        v = np.zeros((fp.num_elems, 2))
        h2 = ev.step(h, v, dt=1.0, smb=0.5)
        assert np.allclose(h2, 100.5)

    def test_mass_conservation_uniform_flow(self):
        """Uniform velocity over uniform thickness: interior cells unchanged."""
        fp, ev = _setup(10)
        h = np.full(fp.num_elems, 200.0)
        v = np.tile([50.0, 0.0], (fp.num_elems, 1))
        dt = 0.5 * ev.max_stable_dt(v)
        h2 = ev.step(h, v, dt)
        # divergence-free uniform field moves no mass between equal interior
        # cells; boundary cells lose mass through the open margin
        centers = fp.elem_centers()
        margin = 1.0e4 + 1.0  # one cell row
        interior = (
            (centers[:, 0] > margin)
            & (centers[:, 0] < 1.0e5 - margin)
            & (centers[:, 1] > margin)
            & (centers[:, 1] < 1.0e5 - margin)
        )
        assert interior.any()
        assert np.allclose(h2[interior], 200.0)
        assert ev.total_volume(h2) <= ev.total_volume(h) + 1e-9

    def test_advection_moves_mass_downstream(self):
        fp, ev = _setup(10)
        h = np.zeros(fp.num_elems)
        centers = fp.elem_centers()
        src = np.argmin(np.hypot(centers[:, 0] - 2.0e4, centers[:, 1] - 5.0e4))
        h[src] = 100.0
        v = np.tile([100.0, 0.0], (fp.num_elems, 1))
        dt = 0.5 * ev.max_stable_dt(v)
        vol0 = ev.total_volume(h)
        for _ in range(5):
            h = ev.step(h, v, dt)
        # mass conserved (no boundary outflow reached yet)
        assert ev.total_volume(h) == pytest.approx(vol0, rel=1e-12)
        com_x0 = centers[src, 0]
        com_x = np.sum(h * ev.areas * centers[:, 0]) / np.sum(h * ev.areas)
        assert com_x > com_x0  # moved downstream

    def test_cfl_enforced(self):
        fp, ev = _setup()
        h = np.full(fp.num_elems, 10.0)
        v = np.tile([1.0e4, 0.0], (fp.num_elems, 1))
        with pytest.raises(ValueError):
            ev.step(h, v, dt=1.0e3)
        # disabled check runs (possibly unstably, but runs)
        ev.step(h, v, dt=1.0e3, enforce_cfl=False)

    def test_thickness_never_negative(self):
        fp, ev = _setup()
        h = np.full(fp.num_elems, 1.0)
        v = np.zeros((fp.num_elems, 2))
        h2 = ev.step(h, v, dt=1.0, smb=-10.0)
        assert np.all(h2 >= 0.0)

    def test_shape_validation(self):
        fp, ev = _setup()
        with pytest.raises(ValueError):
            ev.step(np.zeros(3), np.zeros((fp.num_elems, 2)), 0.1)
        with pytest.raises(ValueError):
            ev.step(np.zeros(fp.num_elems), np.zeros((3, 2)), 0.1)

    def test_infinite_dt_for_static_ice(self):
        fp, ev = _setup()
        assert ev.max_stable_dt(np.zeros((fp.num_elems, 2))) == np.inf

    @given(st.floats(min_value=0.0, max_value=2.0))
    @settings(max_examples=20, deadline=None)
    def test_smb_linearity_property(self, a):
        fp, ev = _setup(4)
        h = np.full(fp.num_elems, 50.0)
        v = np.zeros((fp.num_elems, 2))
        h2 = ev.step(h, v, dt=1.0, smb=a)
        assert np.allclose(h2 - h, a)
