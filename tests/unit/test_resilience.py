"""Unit tests for the fault-injection harness and the recovery ladder.

Covers the resilience package in isolation -- deterministic seeded
injectors, checksum/finiteness/GMRES-outcome detectors, the recovery
policy rungs, Newton checkpoint/restart -- plus the solver-level wiring:
per-step non-finite guards that name the step and phase without a
policy, re-evaluation / step rejection / GMRES escalation with one, and
the instrumented launch sites in kokkos and gpusim.
"""

import numpy as np
import pytest

from repro import resilience as res
from repro.fem.sparse import CsrMatrix
from repro.mesh.partition import HaloExchange, partition_footprint
from repro.mesh.planar import quad_footprint
from repro.solvers.gmres import gmres
from repro.solvers.newton import newton_solve


@pytest.fixture(autouse=True)
def _plane_disarmed():
    """Every test starts and ends with the process fault plane disarmed."""
    res.fault_plane().disarm()
    yield
    res.fault_plane().disarm()


# ---------------------------------------------------------------------------
# injectors
# ---------------------------------------------------------------------------


class TestInjectors:
    def test_fires_only_at_scheduled_occurrences(self):
        inj = res.DropMessage("halo.payload", at=(1, 3))
        rng = np.random.default_rng(0)
        payload = np.ones(4)
        outs = [inj.visit(payload, rng, {}, None) for _ in range(5)]
        assert [bool(np.all(o == 0.0)) for o in outs] == [False, True, False, True, False]
        assert inj.seen == 5 and inj.fired == 2

    def test_bitflip_is_deterministic_per_seed(self):
        payload = np.linspace(1.0, 2.0, 8)
        corrupted = []
        for _ in range(2):
            inj = res.BitFlip("halo.payload", at=(0,))
            out = inj.visit(payload, np.random.default_rng(42), {}, None)
            corrupted.append(out)
        assert np.array_equal(corrupted[0], corrupted[1])
        assert not np.array_equal(corrupted[0], payload)
        # exactly one entry differs (a single flipped bit)
        assert np.count_nonzero(corrupted[0] != payload) == 1
        # the input is never mutated in place
        assert np.array_equal(payload, np.linspace(1.0, 2.0, 8))

    def test_duplicate_doubles_payload(self):
        inj = res.DuplicateMessage("halo.payload", at=(0,))
        out = inj.visit(np.full(3, 2.5), np.random.default_rng(0), {}, None)
        assert np.array_equal(out, np.full(3, 5.0))

    def test_nan_poison_fraction(self):
        inj = res.NaNPoison("sweep.output", at=(0,), fraction=0.25)
        out = inj.visit(np.ones(100), np.random.default_rng(1), {}, None)
        assert np.count_nonzero(np.isnan(out)) == 25

    def test_nan_poison_at_least_one_entry(self):
        inj = res.NaNPoison("sweep.output", at=(0,), fraction=1e-9)
        out = inj.visit(np.ones(10), np.random.default_rng(1), {}, None)
        assert np.count_nonzero(np.isnan(out)) == 1

    def test_rank_kill_counts_only_victim_sweeps(self):
        inj = res.RankKill(at=(1,), rank=2)
        rng = np.random.default_rng(0)
        # other ranks' pokes do not advance the victim's occurrence count
        for r in (0, 1, 3, 2, 0, 1):  # victim occurrence 0: no fire
            inj.visit(None, rng, {"rank": r}, None)
        with pytest.raises(res.RankFailure) as exc:
            inj.visit(None, rng, {"rank": 2}, None)  # victim occurrence 1
        assert exc.value.rank == 2

    def test_launch_fail_filters_by_name(self):
        inj = res.LaunchFail("kernel.launch", at=(0,), name="stokes.resid")
        rng = np.random.default_rng(0)
        inj.visit(None, rng, {"name": "other"}, None)  # filtered: no fire
        with pytest.raises(res.KernelLaunchError):
            inj.visit(None, rng, {"name": "stokes.resid"}, None)

    def test_schedule_pending_and_fired(self):
        sched = res.FaultSchedule(
            [res.DropMessage("halo.payload", at=(0,)), res.NaNPoison("sweep.output", at=(5,))]
        )
        assert len(sched.pending()) == 2 and sched.fired_count() == 0
        assert sched.sites == ["halo.payload", "sweep.output"]
        rng = np.random.default_rng(0)
        sched.for_site("halo.payload")[0].visit(np.ones(2), rng, {}, None)
        assert len(sched.pending()) == 1 and sched.fired_count() == 1

    def test_reference_schedule_covers_acceptance_faults(self):
        sched = res.reference_schedule(nparts=4)
        kinds = {i.kind for i in sched.injectors}
        assert {"bitflip", "drop", "duplicate", "nan_poison", "rank_failure"} <= kinds

    def test_fault_injection_context_arms_and_disarms(self):
        plane = res.fault_plane()
        assert not plane.active
        with res.fault_injection(res.FaultSchedule([])) as armed:
            assert armed is plane and plane.active
            assert plane.policy is not None and plane.log is not None
        assert not plane.active and plane.schedule is None

    def test_perturb_identity_when_disarmed(self):
        plane = res.fault_plane()
        x = np.ones(3)
        assert plane.perturb("halo.payload", x) is x
        plane.poke("spmd.rank", rank=0)  # no-op, must not raise


# ---------------------------------------------------------------------------
# detectors
# ---------------------------------------------------------------------------


class TestDetectors:
    def test_checksum_roundtrip_and_mismatch(self):
        x = np.linspace(0.0, 1.0, 16)
        c = res.payload_checksum(x)
        assert res.verify_payload(x.copy(), c)
        y = x.copy()
        y[3] = np.nextafter(y[3], 2.0)  # single-ulp corruption is caught
        assert not res.verify_payload(y, c)

    def test_nonfinite_count(self):
        assert res.nonfinite_count(np.array([1.0, np.nan, np.inf, -np.inf])) == 3
        assert res.nonfinite_count(np.ones(5)) == 0

    def test_check_finite_names_step_and_phase(self):
        res.check_finite(np.ones(3), step=2, phase="evaluate")  # healthy: no raise
        with pytest.raises(FloatingPointError, match=r"step 2.*evaluate"):
            res.check_finite(np.array([1.0, np.nan]), step=2, phase="evaluate")

    @pytest.mark.parametrize(
        "converged,breakdown,cycles,expect",
        [
            (True, False, [0.5], "converged"),
            (False, True, [0.5], "breakdown"),
            (False, False, [0.5, 0.995], "stagnated"),
            (False, False, [0.5, 0.4], "maxiter"),
            (False, False, [], "maxiter"),
        ],
    )
    def test_classify_gmres(self, converged, breakdown, cycles, expect):
        assert res.classify_gmres(converged, breakdown, cycles) == expect


class TestGmresFlags:
    def test_converged_flag(self):
        A = CsrMatrix.from_coo([0, 1], [0, 1], [2.0, 3.0], (2, 2))
        out = gmres(A, np.array([2.0, 3.0]), tol=1e-12)
        assert out.converged and out.flag == "converged"
        assert "tolerance" in out.reason

    def test_stagnated_flag_on_rotation_with_restart_1(self):
        # the classic GMRES(1) stagnation: a pure rotation makes no
        # progress from a restart-1 Krylov space
        rot = CsrMatrix.from_coo([0, 1], [1, 0], [1.0, -1.0], (2, 2))
        out = gmres(rot, np.array([1.0, 0.0]), tol=1e-12, restart=1, maxiter=6)
        assert not out.converged and out.flag == "stagnated"

    def test_maxiter_flag_when_still_reducing(self):
        rng = np.random.default_rng(3)
        n = 30
        dense = rng.normal(size=(n, n)) + n * np.eye(n)
        rows, cols = np.nonzero(dense)
        A = CsrMatrix.from_coo(rows, cols, dense[rows, cols], (n, n))
        out = gmres(A, rng.normal(size=n), tol=1e-14, restart=2, maxiter=4)
        assert not out.converged and out.flag in ("maxiter", "stagnated")
        assert out.reason  # every flag maps to a human-readable reason


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


class TestPolicies:
    def test_log_records_and_summarizes(self):
        log = res.ResilienceLog()
        log.record("injection", "bitflip", "halo.payload", occurrence=4)
        log.record("detection", "halo_checksum_mismatch", "halo.payload")
        log.record("recovery", "halo_refetch", "halo.payload", attempts=1)
        s = log.summary()
        assert (s["injections"], s["detections"], s["recoveries"]) == (1, 1, 1)
        assert s["by_kind"]["recovery"] == {"halo_refetch": 1}
        assert s["events"][0]["occurrence"] == 4
        with pytest.raises(ValueError):
            log.record("bogus", "x", "y")

    def test_backoff_is_exponential(self):
        p = res.RecoveryPolicy(backoff_s=0.25)
        assert [p.backoff(i) for i in (1, 2, 3)] == [0.25, 0.5, 1.0]

    def test_retry_with_backoff_recovers(self):
        policy = res.RecoveryPolicy(max_retries=3)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        assert res.retry_with_backoff(flaky, policy, "gpusim.launch", "launch_failure") == "ok"
        assert policy.log.count("detection") == 2
        assert policy.log.count("recovery", "launch_failure_retry") == 1

    def test_retry_with_backoff_exhausts_budget(self):
        policy = res.RecoveryPolicy(max_retries=2)

        def always_fails():
            raise RuntimeError("persistent")

        with pytest.raises(RuntimeError, match="persistent"):
            res.retry_with_backoff(always_fails, policy, "site", "kind")
        assert policy.log.count("detection") == 3  # initial + 2 retries

    def test_preconditioner_ladder_falls_through(self):
        log = res.ResilienceLog()

        def mdsc_fails(J):
            raise RuntimeError("singular collapsed block")

        ladder = res.PreconditionerLadder(
            [("mdsc", mdsc_fails), ("jacobi", lambda J: "jacobi-M"), ("none", None)],
            log=log,
        )
        assert ladder("J") == "jacobi-M"
        assert ladder.last_used == "jacobi"
        assert log.count("detection", "preconditioner_failure") == 1
        assert log.count("recovery", "preconditioner_fallback") == 1

    def test_preconditioner_ladder_none_rung(self):
        ladder = res.PreconditionerLadder(
            [("mdsc", lambda J: (_ for _ in ()).throw(RuntimeError("x"))), ("none", None)]
        )
        assert ladder("J") is None and ladder.last_used == "none"

    def test_preconditioner_ladder_all_fail(self):
        def bad(J):
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError, match="every preconditioner factory failed"):
            res.PreconditionerLadder([("a", bad), ("b", bad)])("J")
        with pytest.raises(ValueError):
            res.PreconditionerLadder([])

    def test_choose_survivor(self):
        assert res.choose_survivor({1}, 4) == 0
        assert res.choose_survivor({0, 1}, 4) == 2
        assert res.choose_survivor({0, 1, 2, 3}, 4) is None


# ---------------------------------------------------------------------------
# checkpoint
# ---------------------------------------------------------------------------


class TestCheckpoint:
    def _ckpt(self):
        return res.NewtonCheckpoint(
            step=3,
            x=np.linspace(-1.0, 1.0, 12),
            residual_norms=[10.0, 1.0, 0.1, 0.01],
            step_lengths=[1.0, 0.5, 1.0],
            linear_iterations=[4, 5, 6],
            linear_flags=["converged", "converged", "maxiter"],
        )

    def test_save_load_roundtrip(self, tmp_path):
        ckpt = self._ckpt()
        path = ckpt.save(tmp_path / "newton")
        assert path.suffix == ".npz" and path.exists()
        back = res.NewtonCheckpoint.load(path)
        assert back.step == 3 and back.fnorm == 0.01
        assert np.array_equal(back.x, ckpt.x)
        assert back.linear_flags == ckpt.linear_flags
        assert back.digest == ckpt.digest

    def test_load_rejects_corrupted_checkpoint(self, tmp_path):
        ckpt = self._ckpt()
        path = ckpt.save(tmp_path / "newton.npz")
        with np.load(path) as z:
            arrs = {k: z[k] for k in z.files}
        arrs["x"] = arrs["x"] + 1.0e-12  # silent corruption, stale digest
        np.savez(path, **arrs)
        with pytest.raises(ValueError, match="integrity"):
            res.NewtonCheckpoint.load(path)


# ---------------------------------------------------------------------------
# newton: guards, recovery ladder, checkpoint/resume
# ---------------------------------------------------------------------------


def _quadratic():
    def F(x):
        return x * x - 4.0

    def J(x):
        return CsrMatrix.from_coo(np.arange(3), np.arange(3), 2.0 * x, (3, 3))

    return F, J, np.array([1.0, 3.0, 10.0])


class TestNewtonGuards:
    def test_mid_solve_nan_names_step_and_phase(self):
        F0, J, x0 = _quadratic()
        calls = {"n": 0}

        def F(x):
            calls["n"] += 1
            out = F0(x)
            if calls["n"] > 2:  # healthy through step 0, then poison
                out = out.copy()
                out[0] = np.nan
            return out

        # call 3 is the step-1 line-search trial: the raise must name
        # exactly that step and phase
        with pytest.raises(FloatingPointError, match=r"step 1 \(phase 'line_search'\)"):
            newton_solve(F, J, x0, max_steps=4)

    def test_initial_guess_message_preserved(self):
        with pytest.raises(FloatingPointError, match="initial guess"):
            newton_solve(lambda x: np.array([np.nan]), lambda x: CsrMatrix.identity(1), np.array([1.0]))

    def test_nonfinite_jacobian_detected(self):
        def F(x):
            return x - 1.0

        def J(x):
            return CsrMatrix.from_coo([0], [0], [np.inf], (1, 1))

        with pytest.raises(FloatingPointError, match="step 0"):
            newton_solve(F, J, np.array([5.0]))


class TestNewtonRecovery:
    def test_reevaluation_recovers_transient_nan(self):
        F0, J, x0 = _quadratic()
        poison = {"armed": True}

        def F(x):
            out = F0(x)
            if poison["armed"]:
                poison["armed"] = False  # transient: clears on re-evaluation
                out = out.copy()
                out[0] = np.nan
            return out

        policy = res.RecoveryPolicy()
        out = newton_solve(F, J, x0, max_steps=30, tol=1e-12, resilience=policy)
        assert out.converged
        assert policy.log.count("detection", "nonfinite_evaluation") == 1
        assert policy.log.count("recovery", "reevaluation") == 1

    def test_persistent_nan_exhausts_reevaluation_budget(self):
        F, J0, x0 = _quadratic()
        calls = {"n": 0}

        def J(x):
            calls["n"] += 1
            if calls["n"] > 1:  # healthy step 0, then persistently poisoned
                return CsrMatrix.from_coo(
                    np.arange(3), np.arange(3), np.full(3, np.nan), (3, 3)
                )
            return J0(x)

        policy = res.RecoveryPolicy(max_reevaluations=2)
        with pytest.raises(FloatingPointError, match=r"step 1 \(phase 'evaluate'\)"):
            newton_solve(F, J, x0, max_steps=4, resilience=policy)
        assert policy.log.count("detection", "nonfinite_evaluation") == 2
        assert policy.log.count("recovery") == 0

    def test_healthy_solve_identical_with_and_without_policy(self):
        F, J, x0 = _quadratic()
        plain = newton_solve(F, J, x0, max_steps=30, tol=1e-12)
        guarded = newton_solve(
            F, J, x0, max_steps=30, tol=1e-12,
            resilience=res.RecoveryPolicy(checkpoint_every=0),
        )
        assert np.array_equal(plain.x, guarded.x)
        assert plain.residual_norms == guarded.residual_norms
        assert plain.step_lengths == guarded.step_lengths
        assert plain.linear_iterations == guarded.linear_iterations

    def test_gmres_escalation_rescues_stagnating_solve(self):
        # F(x) = R x - b with R a rotation: GMRES(1) stagnates, the
        # escalated restart-2 space solves the 2-D system exactly
        R = CsrMatrix.from_coo([0, 1], [1, 0], [1.0, -1.0], (2, 2))
        b = np.array([1.0, 0.5])

        policy = res.RecoveryPolicy()
        out = newton_solve(
            lambda x: R.matvec(x) - b,
            lambda x: R,
            np.zeros(2),
            max_steps=2,
            tol=1e-10,
            gmres_restart=1,
            gmres_maxiter=2,
            resilience=policy,
        )
        assert out.converged
        assert policy.log.count("detection", "gmres_stagnated") >= 1
        assert policy.log.count("recovery", "gmres_escalation") >= 1
        assert out.linear_flags[-1] == "converged"

    def test_linear_flags_align_with_iterations(self):
        F, J, x0 = _quadratic()
        out = newton_solve(F, J, x0, max_steps=6, tol=1e-12)
        assert len(out.linear_flags) == len(out.linear_iterations) == out.iterations
        assert set(out.linear_flags) <= set(res.GMRES_FLAGS)


class TestNewtonCheckpointResume:
    def test_resume_matches_uninterrupted_solve(self):
        F, J, x0 = _quadratic()
        full = newton_solve(F, J, x0, max_steps=30, tol=1e-12)

        captured = []
        newton_solve(
            F, J, x0, max_steps=3, tol=1e-12,
            checkpoint_every=1, checkpoint_cb=captured.append,
        )
        assert [c.step for c in captured] == [1, 2, 3]
        resumed = newton_solve(
            F, J, x0, max_steps=30, tol=1e-12, resume_from=captured[-1]
        )
        assert resumed.converged
        assert np.array_equal(resumed.x, full.x)
        assert resumed.residual_norms == full.residual_norms
        assert resumed.linear_iterations == full.linear_iterations
        assert resumed.iterations == full.iterations

    def test_checkpoint_roundtrips_through_disk(self, tmp_path):
        F, J, x0 = _quadratic()
        part = newton_solve(F, J, x0, max_steps=2, tol=1e-12, checkpoint_every=2)
        assert part.checkpoint is not None and part.checkpoint.step == 2
        path = part.checkpoint.save(tmp_path / "ck")
        loaded = res.NewtonCheckpoint.load(path)
        resumed = newton_solve(F, J, x0, max_steps=30, tol=1e-12, resume_from=loaded)
        full = newton_solve(F, J, x0, max_steps=30, tol=1e-12)
        assert np.array_equal(resumed.x, full.x)

    def test_policy_defaults_enable_checkpointing(self):
        F, J, x0 = _quadratic()
        out = newton_solve(
            F, J, x0, max_steps=4, tol=1e-12, resilience=res.RecoveryPolicy()
        )
        assert out.checkpoint is not None  # checkpoint_every defaults to 1


# ---------------------------------------------------------------------------
# instrumented sites: halo gather, kokkos + gpusim launches
# ---------------------------------------------------------------------------


class TestHaloSite:
    def _halo(self):
        fp = quad_footprint(4, 4, 1.0, 1.0)
        return HaloExchange(partition_footprint(fp, 2))

    def test_corrupted_gather_refetches_clean_payload(self):
        halo = self._halo()
        field = np.linspace(0.0, 1.0, halo.partition.footprint.num_nodes)
        clean = halo.gather(1, field)
        policy = res.RecoveryPolicy()
        sched = res.FaultSchedule([res.BitFlip("halo.payload", at=(0,))])
        with res.fault_injection(sched, policy=policy):
            got = halo.gather(1, field)
        assert np.array_equal(got, clean)
        assert policy.log.count("detection", "halo_checksum_mismatch") == 1
        assert policy.log.count("recovery", "halo_refetch") == 1
        assert not sched.pending()

    def test_persistent_corruption_raises_after_budget(self):
        halo = self._halo()
        field = np.linspace(0.0, 1.0, halo.partition.footprint.num_nodes)
        policy = res.RecoveryPolicy(max_retries=2)
        # fires on the initial receive and on every retry
        sched = res.FaultSchedule([res.DropMessage("halo.payload", at=tuple(range(8)))])
        with res.fault_injection(sched, policy=policy):
            with pytest.raises(res.HaloCorruptionError):
                halo.gather(1, field)

    def test_gather_unaffected_when_disarmed(self):
        halo = self._halo()
        field = np.linspace(0.0, 1.0, halo.partition.footprint.num_nodes)
        before = halo.meter.total_bytes
        # part 1 ghosts the interface nodes (part 0 owns them by the
        # min-rank rule), so its gather meters received bytes
        out = halo.gather(1, field)
        assert np.array_equal(out, field[halo.local_nodes(1)])
        assert halo.meter.total_bytes > before  # normal metering still runs


class TestLaunchSites:
    def test_kokkos_launch_retry(self):
        from repro.kokkos import parallel_for

        out = np.zeros(4)

        def functor(i):  # i is a slice on the vectorized host space
            out[i] += 1.0

        policy = res.RecoveryPolicy()
        sched = res.FaultSchedule([res.LaunchFail("kernel.launch", at=(0,))])
        with res.fault_injection(sched, policy=policy):
            parallel_for("resilience.test", 4, functor)
        assert np.array_equal(out, np.ones(4))  # retried launch ran exactly once
        assert policy.log.count("detection", "launch_failure") == 1
        assert policy.log.count("recovery", "launch_retry") == 1

    def test_kokkos_launch_failure_exhausts_budget(self):
        from repro.kokkos import parallel_for

        policy = res.RecoveryPolicy(max_retries=1)
        sched = res.FaultSchedule([res.LaunchFail("kernel.launch", at=(0, 1, 2, 3))])
        with res.fault_injection(sched, policy=policy):
            with pytest.raises(res.KernelLaunchError):
                parallel_for("resilience.test", 4, lambda i: None)

    def test_gpusim_launch_retry(self):
        from repro.gpusim import A100, GPUSimulator, ProblemSize

        sim = GPUSimulator(A100)
        policy = res.RecoveryPolicy()
        sched = res.FaultSchedule([res.LaunchFail("gpusim.launch", at=(0,))])
        with res.fault_injection(sched, policy=policy):
            profile = sim.run("optimized-residual", ProblemSize(num_cells=1000))
        assert profile.time_s > 0.0
        assert policy.log.count("recovery", "launch_retry") == 1


# ---------------------------------------------------------------------------
# seeded backoff jitter + bounded event log (service-facing policy knobs)
# ---------------------------------------------------------------------------


class TestSeededJitter:
    def test_default_policy_is_pure_exponential(self):
        p = res.RecoveryPolicy(backoff_s=0.5)
        assert [p.backoff(i) for i in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_same_seed_reproduces_exact_delays(self):
        a = res.RecoveryPolicy(backoff_s=0.5, backoff_jitter=0.3, jitter_seed=7)
        b = res.RecoveryPolicy(backoff_s=0.5, backoff_jitter=0.3, jitter_seed=7)
        delays = [a.backoff(i) for i in range(1, 6)]
        assert delays == [b.backoff(i) for i in range(1, 6)]
        # repeated calls for the SAME attempt are stable too -- the
        # jitter is a pure function of (seed, attempt), no hidden state
        assert a.backoff(3) == delays[2]

    def test_different_seeds_decorrelate(self):
        a = res.RecoveryPolicy(backoff_s=0.5, backoff_jitter=0.3, jitter_seed=7)
        b = res.RecoveryPolicy(backoff_s=0.5, backoff_jitter=0.3, jitter_seed=8)
        assert [a.backoff(i) for i in range(1, 6)] != [b.backoff(i) for i in range(1, 6)]

    def test_jitter_stays_within_band_around_exponential(self):
        p = res.RecoveryPolicy(backoff_s=0.5, backoff_jitter=0.25, jitter_seed=3)
        for attempt in range(1, 10):
            base = 0.5 * 2.0 ** (attempt - 1)
            d = p.backoff(attempt)
            assert 0.75 * base <= d <= 1.25 * base
            assert d != base  # jitter actually applied


class TestBoundedResilienceLog:
    def test_unbounded_by_default(self):
        log = res.ResilienceLog()
        for i in range(100):
            log.record("detection", "kind", "site", i=i)
        assert len(log.events) == 100
        assert log.dropped == 0

    def test_ring_buffer_drops_oldest_but_counts_stay_exact(self):
        log = res.ResilienceLog(max_events=5)
        for i in range(12):
            log.record("detection", "kind", "site", i=i)
        log.record("recovery", "mend", "site")
        assert len(log.events) == 5
        assert log.dropped == 8
        # the window holds the NEWEST events
        assert [e.get("i") for e in log.events] == [8, 9, 10, 11, None]
        # counters are exact despite truncation
        assert log.count("detection") == 12
        assert log.count("recovery") == 1
        s = log.summary()
        assert s["detections"] == 12
        assert s["events_dropped"] == 8

    def test_extend_merges_without_double_counting(self):
        src = res.ResilienceLog()
        src.record("injection", "bitflip", "halo.payload")
        src.record("detection", "halo_checksum_mismatch", "halo.payload")
        dst = res.ResilienceLog(max_events=1)
        dst.record("recovery", "halo_refetch", "halo.payload")
        dst.extend(src.events)
        assert dst.count("injection") == 1
        assert dst.count("detection") == 1
        assert dst.count("recovery") == 1
        assert len(dst.events) == 1  # ring kept the newest only
        assert dst.dropped == 2
        assert dst.summary()["events_dropped"] == 2
