"""Unit tests of the transient building blocks (no velocity solves).

Particles, checkpoints, the cell->node interpolation and the vertical
re-extrusion are all pure numpy; everything here runs in milliseconds
and pins the determinism contracts the engine's bitwise-resume
guarantee is assembled from.
"""

import dataclasses

import numpy as np
import pytest

from repro.mesh.extrude import extrude_footprint
from repro.mesh.geometry import antarctica_geometry
from repro.mesh.planar import masked_quad_footprint, quad_footprint
from repro.physics import ThicknessEvolver
from repro.transient import (
    SCENARIOS,
    ParticleSet,
    TransientCheckpoint,
    TransientScenario,
    get_scenario,
)


@pytest.fixture(scope="module")
def footprint():
    return quad_footprint(6, 5, 6.0e5, 5.0e5)


def _uniform_nodal3(footprint, levels, vx, vy):
    """A constant (vx, vy) nodal velocity on the extruded node set."""
    nn3 = footprint.num_nodes * levels
    out = np.empty((nn3, 2))
    out[:, 0] = vx
    out[:, 1] = vy
    return out


class TestParticles:
    def test_seed_is_deterministic(self, footprint):
        h = np.linspace(100.0, 2000.0, footprint.num_elems)
        a = ParticleSet.seed(footprint, h, 32, seed=11)
        b = ParticleSet.seed(footprint, h, 32, seed=11)
        assert np.array_equal(a.xy, b.xy)
        assert np.array_equal(a.zeta, b.zeta)
        c = ParticleSet.seed(footprint, h, 32, seed=12)
        assert not np.array_equal(a.xy, c.xy)

    def test_seed_weights_by_ice_volume(self, footprint):
        # all the ice in one cell -> every particle lands in/near it
        h = np.zeros(footprint.num_elems)
        h[7] = 1000.0
        p = ParticleSet.seed(footprint, h, 16, seed=3)
        center = footprint.elem_centers()[7]
        spread = np.sqrt(footprint.elem_areas()[7])
        assert np.all(np.abs(p.xy - center) <= 0.5 * spread)

    def test_uniform_field_interpolates_exactly(self, footprint):
        p = ParticleSet.seed(footprint, np.full(footprint.num_elems, 500.0), 8, seed=5)
        nodal = _uniform_nodal3(footprint, levels=4, vx=40.0, vy=-25.0)
        v = p.velocity_at(p.xy, p.zeta, nodal)
        assert np.allclose(v, [40.0, -25.0], rtol=0.0, atol=1.0e-9)

    def test_rk2_advection_in_uniform_field_is_exact(self, footprint):
        p = ParticleSet.seed(footprint, np.full(footprint.num_elems, 500.0), 8, seed=5)
        x0 = p.xy.copy()
        nodal = _uniform_nodal3(footprint, levels=4, vx=30.0, vy=10.0)
        p.advect(nodal, dt_years=2.0)
        # both RK2 stages see the same velocity: displacement is dt * v
        assert np.allclose(p.xy - x0, [60.0, 20.0], rtol=0.0, atol=1.0e-6)

    def test_off_mesh_particle_deactivates_and_freezes(self, footprint):
        xy = np.array([[3.0e5, 2.5e5], [50.0e6, 50.0e6]])  # second is far away
        p = ParticleSet(footprint, xy, np.array([0.5, 0.5]))
        nodal = _uniform_nodal3(footprint, levels=4, vx=10.0, vy=0.0)
        p.advect(nodal, dt_years=1.0)
        assert p.active[0] and not p.active[1]
        frozen = p.xy[1].copy()
        p.advect(nodal, dt_years=1.0)  # inactive: stays exactly put
        assert np.array_equal(p.xy[1], frozen)
        assert p.num_active == 1

    def test_zeta_validated(self, footprint):
        with pytest.raises(ValueError, match="zeta"):
            ParticleSet(footprint, np.zeros((1, 2)), np.array([1.5]))


class TestTransientCheckpoint:
    def _ckpt(self) -> TransientCheckpoint:
        rng = np.random.default_rng(0)
        return TransientCheckpoint(
            step=7,
            t_years=350.0,
            tol_abs=2.4e7,
            thickness=rng.uniform(0.0, 3000.0, 40),
            u=rng.normal(size=200),
            particles_xy=rng.uniform(0.0, 1.0e6, (16, 2)),
            particles_zeta=rng.uniform(0.0, 1.0, 16),
            particles_active=rng.uniform(size=16) > 0.2,
            scenario_digest="abc123",
            volumes=[1.0e16, 1.0e16],
            times=[0.0, 50.0],
            dts=[50.0],
            newton_iterations=[8],
        )

    def test_save_load_roundtrip_is_bitwise(self, tmp_path):
        ckpt = self._ckpt()
        path = ckpt.save(tmp_path / "transient")
        assert path.suffix == ".npz" and path.exists()
        back = TransientCheckpoint.load(path)
        assert back.step == 7 and back.t_years == 350.0 and back.tol_abs == 2.4e7
        assert np.array_equal(back.thickness, ckpt.thickness)
        assert np.array_equal(back.u, ckpt.u)
        assert np.array_equal(back.particles_xy, ckpt.particles_xy)
        assert np.array_equal(back.particles_active, ckpt.particles_active)
        assert back.scenario_digest == "abc123"
        assert back.volumes == ckpt.volumes and back.dts == ckpt.dts
        assert back.digest == ckpt.digest

    def test_load_rejects_corrupted_checkpoint(self, tmp_path):
        ckpt = self._ckpt()
        path = ckpt.save(tmp_path / "transient.npz")
        with np.load(path) as z:
            arrs = {k: z[k] for k in z.files}
        arrs["thickness"] = arrs["thickness"] + 1.0e-9  # silent bit drift
        np.savez(path, **arrs)
        with pytest.raises(ValueError, match="integrity"):
            TransientCheckpoint.load(path)


class TestScenarios:
    def test_library_digests_are_distinct(self):
        digests = {sc.digest for sc in SCENARIOS.values()}
        assert len(digests) == len(SCENARIOS)

    def test_digest_ignores_name_but_not_numbers(self):
        a = get_scenario("antarctica-closed")
        renamed = dataclasses.replace(a, name="other", description="x")
        assert renamed.digest == a.digest
        assert a.with_steps(a.num_steps + 1).digest != a.digest

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(KeyError, match="antarctica-closed"):
            get_scenario("nope")

    def test_validation(self):
        with pytest.raises(ValueError, match="forcing"):
            TransientScenario(name="x", forcing="melt-everything")
        with pytest.raises(ValueError, match="family"):
            TransientScenario(name="x", family="mars")
        with pytest.raises(ValueError, match="cfl"):
            TransientScenario(name="x", cfl_safety=1.5)


class TestGeometryCoupling:
    def test_node_thickness_preserves_uniform_fields(self, footprint):
        evolver = ThicknessEvolver(footprint)
        hn = evolver.node_thickness(np.full(footprint.num_elems, 1234.5))
        assert np.allclose(hn, 1234.5, rtol=0.0, atol=1.0e-9)

    def test_update_columns_moves_only_z(self):
        geo = antarctica_geometry()
        fp = masked_quad_footprint(8, 8, geo.lx, geo.ly, geo.mask)
        mesh = extrude_footprint(fp, geo, 4)
        xy_before = mesh.coords[:, :2].copy()
        elems_before = mesh.elems  # same object must survive
        h2 = mesh.thickness2d * 0.9
        s2 = mesh.surface2d - 0.1 * mesh.thickness2d
        mesh.update_columns(h2, s2)
        assert np.array_equal(mesh.coords[:, :2], xy_before)
        assert mesh.elems is elems_before
        assert np.array_equal(mesh.thickness2d, np.maximum(h2, 10.0))
        # column endpoints honor sigma: base at s - h, top at s
        base = mesh.coords[mesh.basal_nodes(), 2]
        top = mesh.coords[mesh.surface_nodes(), 2]
        assert np.allclose(top - base, mesh.thickness2d)
        assert np.allclose(top, mesh.surface2d)

    def test_update_columns_rejects_degenerate_and_bad_shapes(self):
        geo = antarctica_geometry()
        fp = masked_quad_footprint(8, 8, geo.lx, geo.ly, geo.mask)
        mesh = extrude_footprint(fp, geo, 3)
        with pytest.raises(ValueError, match="per footprint node"):
            mesh.update_columns(mesh.thickness2d[:-1], mesh.surface2d[:-1])
        # a zero-thickness column is floored, not degenerate
        h2 = np.zeros_like(mesh.thickness2d)
        mesh.update_columns(h2, mesh.surface2d)
        assert np.all(mesh.thickness2d == 10.0)
