"""Tests for Jacobian seeding/extraction helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autodiff import (
    seed_independent,
    seed_block,
    extract_jacobian,
    finite_difference_jacobian,
)


class TestSeedIndependent:
    def test_identity_seed(self):
        x = seed_independent([1.0, 2.0, 3.0])
        assert np.array_equal(x.dx, np.eye(3))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            seed_independent(np.zeros((2, 2)))

    def test_quadratic_jacobian(self):
        x = seed_independent([2.0, 3.0])
        f = x * x  # elementwise square
        val, jac = extract_jacobian(f)
        assert np.allclose(val, [4.0, 9.0])
        assert np.allclose(jac, np.diag([4.0, 6.0]))


class TestSeedBlock:
    def test_block_shape_and_seeds(self):
        vals = np.arange(12.0).reshape(3, 4)  # 3 elements, 4 local dofs
        x = seed_block(vals, num_derivs=4)
        assert x.shape == (3, 4)
        for e in range(3):
            assert np.array_equal(x.dx[e], np.eye(4))

    def test_offset(self):
        x = seed_block(np.zeros((2, 2)), num_derivs=6, offset=3)
        assert x.dx[0, 0, 3] == 1.0
        assert x.dx[0, 1, 4] == 1.0

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            seed_block(np.zeros((2, 5)), num_derivs=4)

    def test_elementwise_jacobian_matches_fd(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(size=(5, 3))

        def local_resid(u):
            # a nonlinear local residual per element
            return np.stack(
                [u[..., 0] * u[..., 1], u[..., 1] ** 2 + u[..., 2], np.sin(u[..., 0])],
                axis=-1,
            )

        x = seed_block(vals, num_derivs=3)
        r0 = x[..., 0] * x[..., 1]
        r1 = x[..., 1] * x[..., 1] + x[..., 2]
        from repro.autodiff import ops

        r2 = ops.sin(x[..., 0])
        for e in range(5):
            fd = finite_difference_jacobian(lambda u: local_resid(u[None])[0], vals[e])
            ad = np.stack([r0.dx[e], r1.dx[e], r2.dx[e]])
            assert np.allclose(ad, fd, rtol=1e-5, atol=1e-6)


class TestFiniteDifference:
    def test_linear_exact(self):
        A = np.array([[1.0, 2.0], [3.0, 4.0]])
        jac = finite_difference_jacobian(lambda x: A @ x, np.array([0.5, -0.5]))
        assert np.allclose(jac, A, rtol=1e-6)

    @given(
        hnp.arrays(
            np.float64,
            3,
            elements=st.floats(min_value=-2.0, max_value=2.0),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_ad_matches_fd_property(self, v):
        x = seed_independent(v)
        f = x * x * 2.0 + x
        _, jac = extract_jacobian(f)
        fd = finite_difference_jacobian(lambda u: 2.0 * u * u + u, v)
        assert np.allclose(jac, fd, rtol=1e-4, atol=1e-5)
