"""GMRES over distributed operators must reproduce serial GMRES exactly.

The SPMD velocity solve runs GMRES with (a) a row-partitioned matvec --
each rank applies its block of rows and results are placed, never
summed -- and (b) partitioned dot products through
:class:`repro.solvers.reductions.BlockReducer`.  Both are constructed to
be *bitwise* identical to their serial counterparts, so the Arnoldi
iterates, the residual history and the returned solution must match the
serial run exactly (no tolerance), on symmetric and nonsymmetric
systems alike.  This is the kernel-level half of the E3SM-style BFB
contract the integration test checks end to end.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.sparse import CsrMatrix
from repro.solvers import BlockReducer, column_block_reducer, gmres
from repro.solvers.reductions import BlockReducer as BlockReducerDirect


def _random_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    B = rng.normal(size=(n, n))
    return CsrMatrix.from_scipy(sp.csr_matrix(B @ B.T + n * np.eye(n)))


def _random_nonsymmetric(n, seed=1):
    rng = np.random.default_rng(seed)
    B = rng.normal(size=(n, n)) + n * np.eye(n) + np.triu(rng.normal(size=(n, n)), 1)
    return CsrMatrix.from_scipy(sp.csr_matrix(B))


def _row_block_matvec(A, block_ptr):
    """Row-partitioned SpMV: each 'rank' owns a contiguous row block.

    Rank-local products are placed into the result -- the distributed
    pattern with one owner per row.  scipy's CSR row slicing keeps each
    row's entries in order, so every row sum is bitwise equal to the
    serial SpMV.
    """
    S = A.to_scipy()
    blocks = [S[int(a) : int(b)] for a, b in zip(block_ptr[:-1], block_ptr[1:])]

    def matvec(x):
        y = np.empty(A.shape[0])
        for (a, b), blk in zip(zip(block_ptr[:-1], block_ptr[1:]), blocks):
            y[int(a) : int(b)] = blk @ x
        return y

    return matvec


def _block_ptr(n, nblocks):
    edges = np.linspace(0, n, nblocks + 1).round().astype(np.int64)
    assert np.all(np.diff(edges) > 0)
    return edges


class TestDistributedGmresExact:
    @pytest.mark.parametrize("make", [_random_spd, _random_nonsymmetric])
    @pytest.mark.parametrize("nblocks", [2, 4, 7])
    def test_history_and_solution_exact(self, make, nblocks):
        n = 40
        A = make(n)
        rng = np.random.default_rng(5)
        b = rng.normal(size=n)
        ptr = _block_ptr(n, nblocks)
        red = BlockReducer(ptr)

        serial = gmres(A, b, tol=1e-12, restart=15, maxiter=200, dot=red.dot, norm=red.norm)
        dist = gmres(
            _row_block_matvec(A, ptr),
            b,
            tol=1e-12,
            restart=15,
            maxiter=200,
            dot=red.dot,
            norm=red.norm,
        )
        assert dist.iterations == serial.iterations
        assert dist.residual_norms == serial.residual_norms  # exact, not approx
        assert np.array_equal(dist.x, serial.x)
        assert serial.converged and dist.converged

    def test_reducer_independent_of_block_count(self):
        """The reducer's value is fixed by the block layout alone, and the
        serial solve that uses it matches numpy's dot to rounding."""
        n = 30
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=n), rng.normal(size=n)
        red3 = BlockReducer(_block_ptr(n, 3))
        # same blocks computed "locally": concatenating per-block partials
        # from slices gives identical bits
        partials = [
            float(np.add.reduce((x * y)[a:b]))
            for a, b in zip(_block_ptr(n, 3)[:-1], _block_ptr(n, 3)[1:])
        ]
        assert red3.dot(x, y) == float(np.sum(np.array(partials)))
        assert red3.dot(x, y) == pytest.approx(float(np.dot(x, y)), rel=1e-13)

    def test_spd_matches_plain_gmres_to_tolerance(self):
        """Blocked reductions change bits, not mathematics."""
        A = _random_spd(32, seed=3)
        b = np.ones(32)
        red = BlockReducer(_block_ptr(32, 4))
        plain = gmres(A, b, tol=1e-12, restart=32, maxiter=100)
        blocked = gmres(A, b, tol=1e-12, restart=32, maxiter=100, dot=red.dot, norm=red.norm)
        assert np.allclose(plain.x, blocked.x, rtol=1e-9)


class TestBlockReducer:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockReducer(np.array([0]))
        with pytest.raises(ValueError):
            BlockReducer(np.array([1, 2]))
        with pytest.raises(ValueError):
            BlockReducer(np.array([0, 2, 2]))
        red = BlockReducer(np.array([0, 2, 5]))
        with pytest.raises(ValueError):
            red.block_partials(np.zeros(4))

    def test_norm_matches_dot(self):
        red = BlockReducer(np.array([0, 3, 6, 10]))
        x = np.arange(10.0)
        assert red.norm(x) == float(np.sqrt(red.dot(x, x)))

    def test_column_block_reducer_layout(self):
        red = column_block_reducer(num_columns=7, levels=5, ndof=2)
        assert red.num_blocks == 7
        assert red.n == 7 * 5 * 2
        assert red is not None and isinstance(red, BlockReducerDirect)

    def test_meter_records_allreduce(self):
        from repro.mesh.partition import TrafficMeter

        meter = TrafficMeter(4)
        red = BlockReducer(np.array([0, 4, 8]), meter=meter)
        red.dot(np.ones(8), np.ones(8))
        red.norm(np.ones(8))
        assert meter.events["allreduce"] == 2
        assert meter.channel_bytes["allreduce"] == 2 * 8 * 4
