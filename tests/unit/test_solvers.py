"""Tests for GMRES, smoothers, MDSC-AMG multigrid, and damped Newton."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.sparse import CsrMatrix
from repro.solvers import (
    gmres,
    JacobiSmoother,
    VerticalLineSmoother,
    Ilu0Preconditioner,
    IdentityPreconditioner,
    build_mdsc_amg,
    newton_solve,
)


def _laplace_1d(n):
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    A = sp.diags([off, main, off], [-1, 0, 1]).tocsr()
    return CsrMatrix.from_scipy(A)


def _random_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    B = rng.normal(size=(n, n))
    A = B @ B.T + n * np.eye(n)
    As = sp.csr_matrix(A)
    return CsrMatrix.from_scipy(As)


def _extruded_operator(ncols=16, levels=5, ndof=2, aniso=100.0, seed=0):
    """Anisotropic operator mimicking an extruded-mesh discretization.

    Columns are strongly coupled vertically (factor ``aniso``), weakly
    horizontally on a ring; dofs column-major: ((col*levels)+lev)*ndof+c.
    """
    n = ncols * levels * ndof
    rows, cols, vals = [], [], []

    def dof(c, l, k):
        return (c * levels + l) * ndof + k

    for c in range(ncols):
        for l in range(levels):
            for k in range(ndof):
                i = dof(c, l, k)
                diag = 2.0 * aniso + 2.0
                if l > 0:
                    rows.append(i), cols.append(dof(c, l - 1, k)), vals.append(-aniso)
                if l < levels - 1:
                    rows.append(i), cols.append(dof(c, l + 1, k)), vals.append(-aniso)
                for cn in ((c - 1) % ncols, (c + 1) % ncols):
                    rows.append(i), cols.append(dof(cn, l, k)), vals.append(-1.0)
                rows.append(i), cols.append(i), vals.append(diag + 0.5)
    return CsrMatrix.from_coo(rows, cols, vals, (n, n))


class TestGmres:
    def test_identity_converges_immediately(self):
        A = CsrMatrix.identity(10)
        b = np.arange(10.0)
        res = gmres(A, b, tol=1e-12)
        assert res.converged
        assert np.allclose(res.x, b)

    def test_laplace_converges(self):
        A = _laplace_1d(50)
        rng = np.random.default_rng(0)
        xref = rng.normal(size=50)
        b = A.matvec(xref)
        res = gmres(A, b, tol=1e-10, restart=30, maxiter=500)
        assert res.converged
        assert np.allclose(res.x, xref, atol=1e-6)

    def test_zero_rhs(self):
        res = gmres(_laplace_1d(5), np.zeros(5))
        assert res.converged and np.allclose(res.x, 0.0)

    def test_residual_monotone_within_cycle(self):
        A = _random_spd(30, seed=1)
        b = np.ones(30)
        res = gmres(A, b, tol=1e-12, restart=30, maxiter=30)
        norms = np.array(res.residual_norms)
        assert np.all(np.diff(norms) <= 1e-9 * norms[0])

    def test_maxiter_respected(self):
        A = _laplace_1d(200)
        b = np.ones(200)
        res = gmres(A, b, tol=1e-14, restart=10, maxiter=15)
        assert res.iterations <= 15
        assert not res.converged

    def test_callable_operator(self):
        A = _laplace_1d(20)
        res = gmres(lambda v: A.matvec(v), np.ones(20), tol=1e-10, maxiter=100)
        assert res.converged

    def test_preconditioner_reduces_iterations(self):
        A = _extruded_operator(ncols=12, levels=6, aniso=500.0)
        b = np.random.default_rng(11).normal(size=A.shape[0])
        plain = gmres(A, b, tol=1e-8, restart=40, maxiter=400)
        pre = gmres(A, b, tol=1e-8, restart=40, maxiter=400, M=JacobiSmoother(A, iters=3))
        assert pre.converged
        assert pre.iterations < plain.iterations

    @given(st.integers(5, 40))
    @settings(max_examples=15, deadline=None)
    def test_spd_always_converges_property(self, n):
        A = _random_spd(n, seed=n)
        b = np.ones(n)
        res = gmres(A, b, tol=1e-10, restart=n, maxiter=5 * n)
        assert res.converged
        assert np.linalg.norm(A.matvec(res.x) - b) <= 1e-9 * np.linalg.norm(b)


class TestGmresBreakdown:
    """Lucky-breakdown termination: once the Krylov space closes, stop."""

    @staticmethod
    def _counting(A):
        count = {"matvecs": 0}

        def mv(v):
            count["matvecs"] += 1
            return A.matvec(v)

        return mv, count

    def test_krylov_closure_converges_in_subspace_dim(self):
        # three distinct eigenvalues -> Krylov space of b closes at dim 3
        d = np.array([1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
        A = CsrMatrix.from_coo(np.arange(6), np.arange(6), d, (6, 6))
        mv, count = self._counting(A)
        res = gmres(mv, np.ones(6), tol=1e-12, restart=6, maxiter=60)
        assert res.converged
        assert res.iterations <= 3
        # initial residual + <=3 Arnoldi steps + final true residual
        assert count["matvecs"] <= 5

    def test_breakdown_on_inconsistent_singular_system_stops(self):
        """Singular A with b outside range(A): the subspace closes while
        the residual stays large.  Without breakdown termination GMRES
        keeps orthogonalizing against zero vectors and restarting until
        ``maxiter``; with it, the solve stops at the subspace dimension.
        """
        A = CsrMatrix.from_coo(np.arange(3), np.arange(3), [1.0, 2.0, 0.0], (3, 3))
        b = np.array([1.0, 1.0, 1.0])
        mv, count = self._counting(A)
        res = gmres(mv, b, tol=1e-12, restart=10, maxiter=200)
        assert not res.converged
        assert res.iterations <= 4  # not the full maxiter budget
        assert count["matvecs"] <= 8
        # the returned iterate is still the subspace minimizer: only the
        # null-space component of b (norm 1) remains
        assert res.final_residual == pytest.approx(1.0, rel=1e-8)

    def test_breakdown_solution_is_exact_for_consistent_system(self):
        d = np.array([2.0, 2.0, 5.0])
        A = CsrMatrix.from_coo(np.arange(3), np.arange(3), d, (3, 3))
        xref = np.array([1.0, 1.0, -3.0])
        res = gmres(A, A.matvec(xref), tol=1e-13, restart=3, maxiter=30)
        assert res.converged
        assert np.allclose(res.x, xref, atol=1e-10)


class TestSmoothers:
    def test_jacobi_reduces_error(self):
        A = _laplace_1d(30)
        b = np.zeros(30)
        x0 = np.ones(30)
        sm = JacobiSmoother(A, omega=0.6, iters=10)
        x = sm.smooth(A, b, x0)
        assert np.linalg.norm(x) < np.linalg.norm(x0)

    def test_jacobi_rejects_zero_diag(self):
        A = CsrMatrix.from_coo([0, 1], [1, 0], [1.0, 1.0], (2, 2))
        with pytest.raises(ValueError):
            JacobiSmoother(A)

    def test_jacobi_bad_omega(self):
        with pytest.raises(ValueError):
            JacobiSmoother(_laplace_1d(4), omega=1.5)

    def test_vertical_line_exact_on_block_diagonal(self):
        """With no horizontal coupling one sweep solves exactly."""
        A = _extruded_operator(ncols=4, levels=4, aniso=10.0)
        # strip horizontal couplings -> block diagonal
        rows = np.repeat(np.arange(A.shape[0]), np.diff(A.indptr))
        blk = 4 * 2
        keep = rows // blk == A.indices // blk
        Abd = CsrMatrix.from_coo(rows[keep], A.indices[keep], A.data[keep], A.shape)
        sm = VerticalLineSmoother(Abd, blk, omega=1.0, iters=1)
        rng = np.random.default_rng(2)
        xref = rng.normal(size=A.shape[0])
        b = Abd.matvec(xref)
        x = sm.smooth(Abd, b, np.zeros_like(b))
        assert np.allclose(x, xref, atol=1e-10)

    def test_vertical_line_beats_jacobi_on_anisotropy(self):
        A = _extruded_operator(ncols=10, levels=8, aniso=1000.0)
        b = np.zeros(A.shape[0])
        rng = np.random.default_rng(3)
        x0 = rng.normal(size=A.shape[0])
        xj = JacobiSmoother(A, omega=0.7, iters=3).smooth(A, b, x0)
        xv = VerticalLineSmoother(A, 8 * 2, omega=0.95, iters=3).smooth(A, b, x0)
        assert np.linalg.norm(xv) < 0.5 * np.linalg.norm(xj)

    def test_vertical_line_size_check(self):
        with pytest.raises(ValueError):
            VerticalLineSmoother(_laplace_1d(10), 3)

    def test_ilu0_exact_for_triangular_pattern(self):
        """ILU(0) on a dense-pattern small matrix == full LU (no fill)."""
        A = _random_spd(8, seed=4)
        ilu = Ilu0Preconditioner(A)
        rng = np.random.default_rng(4)
        r = rng.normal(size=8)
        # dense pattern -> ILU(0) is exact LU
        assert np.allclose(A.matvec(ilu.apply(r)), r, atol=1e-8)

    def test_ilu0_preconditions_gmres(self):
        A = _extruded_operator(ncols=8, levels=4, aniso=50.0)
        b = np.random.default_rng(12).normal(size=A.shape[0])
        plain = gmres(A, b, tol=1e-8, maxiter=300)
        pre = gmres(A, b, tol=1e-8, maxiter=300, M=Ilu0Preconditioner(A))
        assert pre.converged and pre.iterations < plain.iterations

    def test_identity_preconditioner(self):
        p = IdentityPreconditioner()
        r = np.arange(4.0)
        assert np.array_equal(p.apply(r), r)


class TestMultigrid:
    def test_hierarchy_structure(self):
        levels = 8
        A = _extruded_operator(ncols=32, levels=levels, aniso=200.0)
        mg = build_mdsc_amg(A, num_columns=32, levels=levels, coarse_size=50)
        desc = mg.describe()
        kinds = [k for k, _, _ in desc]
        assert kinds[0] == "vertical"
        assert kinds[-1] == "coarse"
        sizes = [n for _, n, _ in desc]
        assert all(sizes[i] > sizes[i + 1] for i in range(len(sizes) - 1))

    def test_vcycle_preconditions_gmres(self):
        levels = 8
        A = _extruded_operator(ncols=24, levels=levels, aniso=500.0)
        b = np.ones(A.shape[0])
        mg = build_mdsc_amg(A, num_columns=24, levels=levels, coarse_size=40)
        plain = gmres(A, b, tol=1e-8, restart=60, maxiter=600)
        pre = gmres(A, b, tol=1e-8, restart=60, maxiter=600, M=mg)
        assert pre.converged
        assert pre.iterations < max(10, plain.iterations // 2)

    def test_vcycle_is_linear_operator(self):
        A = _extruded_operator(ncols=8, levels=4)
        mg = build_mdsc_amg(A, num_columns=8, levels=4, coarse_size=20)
        rng = np.random.default_rng(5)
        r1, r2 = rng.normal(size=A.shape[0]), rng.normal(size=A.shape[0])
        lhs = mg.apply(2.0 * r1 - 3.0 * r2)
        rhs = 2.0 * mg.apply(r1) - 3.0 * mg.apply(r2)
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_empty_hierarchy_rejected(self):
        from repro.solvers.multigrid import SemicoarseningMultigrid

        with pytest.raises(ValueError):
            SemicoarseningMultigrid([])


class TestHorizontalAggregates:
    """Straggler handling: no spurious singleton aggregates."""

    @staticmethod
    def _aggregate_sizes(A, ndof=1, theta=0.02):
        from repro.solvers.multigrid import horizontal_aggregates

        dof_agg, coarse = horizontal_aggregates(A, ndof=ndof, theta=theta)
        agg_of_node = dof_agg.reshape(-1, ndof)[:, 0] // ndof
        return np.bincount(agg_of_node, minlength=coarse // ndof), coarse

    @staticmethod
    def _path_graph(n):
        rows, cols, vals = [], [], []
        for i in range(n):
            rows.append(i), cols.append(i), vals.append(2.0)
            for j in (i - 1, i + 1):
                if 0 <= j < n:
                    rows.append(i), cols.append(j), vals.append(-1.0)
        return CsrMatrix.from_coo(rows, cols, vals, (n, n))

    @staticmethod
    def _grid_laplacian(nx, ny):
        n = nx * ny
        rows, cols, vals = [], [], []
        for j in range(ny):
            for i in range(nx):
                v = j * nx + i
                deg = 0
                for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    ii, jj = i + di, j + dj
                    if 0 <= ii < nx and 0 <= jj < ny:
                        rows.append(v), cols.append(jj * nx + ii), vals.append(-1.0)
                        deg += 1
                rows.append(v), cols.append(v), vals.append(float(deg) + 0.5)
        return CsrMatrix.from_coo(rows, cols, vals, (n, n))

    def test_path_stragglers_join_neighbors(self):
        """On a path graph the greedy sweep leaves end-of-path stragglers;
        they must join a neighboring aggregate, not seed singletons."""
        sizes, coarse = self._aggregate_sizes(self._path_graph(5))
        assert coarse == 2  # {0,1,4-straggler? no: {0,1}, {2,3}+4}
        assert sizes.min() >= 2
        assert sizes.sum() == 5

    def test_grid_has_no_singletons(self):
        """Regression: the old first pass aggregated every node (stragglers
        always seeded new aggregates), so boundary nodes became singletons
        that inflated the coarse operator."""
        sizes, _ = self._aggregate_sizes(self._grid_laplacian(7, 7))
        assert sizes.sum() == 49
        assert sizes.min() >= 2  # connected graph: no singletons at all

    def test_aggregate_size_distribution_reasonable(self):
        sizes, coarse = self._aggregate_sizes(self._grid_laplacian(10, 10))
        assert sizes.sum() == 100
        # greedy star aggregation on a 5-point stencil: aggregates between
        # 2 (merged straggler pairs) and 9 (star + absorbed stragglers)
        assert 2 <= sizes.min() and sizes.max() <= 9
        # coarsening actually coarsens: at least 2x reduction (no
        # singletons means every aggregate halves its nodes or better)
        assert coarse <= 100 // 2

    def test_isolated_nodes_still_covered(self):
        """A node with no strong connections seeds its own aggregate."""
        rows = [0, 1, 1, 2, 2]
        cols = [0, 1, 2, 1, 2]
        vals = [1.0, 2.0, -1.0, -1.0, 2.0]  # node 0 disconnected
        A = CsrMatrix.from_coo(rows, cols, vals, (3, 3))
        sizes, coarse = self._aggregate_sizes(A)
        assert sizes.sum() == 3
        assert coarse == 2  # {0} isolated, {1,2}

    def test_ndof_blocks_move_together(self):
        from repro.solvers.multigrid import horizontal_aggregates

        A = _extruded_operator(ncols=6, levels=1, ndof=2, aniso=1.0)
        dof_agg, coarse = horizontal_aggregates(A, ndof=2)
        pairs = dof_agg.reshape(-1, 2)
        assert np.all(pairs[:, 1] == pairs[:, 0] + 1)
        assert coarse % 2 == 0


class TestNewton:
    def test_scalarish_quadratic(self):
        """Solve x^2 - 4 = 0 componentwise (diagonal Jacobian)."""

        def F(x):
            return x * x - 4.0

        def J(x):
            return CsrMatrix.from_coo(np.arange(3), np.arange(3), 2.0 * x, (3, 3))

        res = newton_solve(F, J, np.array([1.0, 3.0, 10.0]), max_steps=30, tol=1e-12)
        assert res.converged
        assert np.allclose(res.x, 2.0)

    def test_linear_system_one_step(self):
        A = _random_spd(10, seed=6)
        xref = np.arange(10.0)
        b = A.matvec(xref)
        res = newton_solve(lambda x: A.matvec(x) - b, lambda x: A, np.zeros(10), max_steps=3, tol=1e-10, linear_tol=1e-12)
        assert res.converged
        assert res.iterations <= 2
        assert np.allclose(res.x, xref, atol=1e-6)

    def test_damping_engages_on_hard_start(self):
        # f(x) = atan-like flat function where full steps overshoot
        def F(x):
            return np.arctan(x)

        def J(x):
            d = 1.0 / (1.0 + x * x)
            return CsrMatrix.from_coo([0], [0], d, (1, 1))

        res = newton_solve(F, J, np.array([20.0]), max_steps=40, tol=1e-10)
        assert res.converged
        assert min(res.step_lengths) < 1.0  # backtracking happened

    def test_residual_history_decreases(self):
        A = _random_spd(8, seed=7)
        b = A.matvec(np.ones(8))
        res = newton_solve(lambda x: A.matvec(x) - b, lambda x: A, np.zeros(8), max_steps=5, tol=1e-12)
        norms = res.residual_norms
        assert norms[-1] < norms[0]

    def test_respects_max_steps(self):
        def F(x):
            return np.array([np.exp(x[0]) + 1.0])  # no root

        def J(x):
            return CsrMatrix.from_coo([0], [0], [np.exp(x[0])], (1, 1))

        res = newton_solve(F, J, np.array([0.0]), max_steps=4, tol=1e-12)
        assert not res.converged
        assert res.iterations == 4

    def test_fused_path_matches_unfused(self):
        def F(x):
            return x * x - 4.0

        def J(x):
            return CsrMatrix.from_coo(np.arange(3), np.arange(3), 2.0 * x, (3, 3))

        x0 = np.array([1.0, 3.0, 10.0])
        plain = newton_solve(F, J, x0, max_steps=30, tol=1e-12)
        fused = newton_solve(
            F, None, x0, max_steps=30, tol=1e-12, residual_jacobian_fn=lambda x: (F(x), J(x))
        )
        assert fused.converged
        assert np.allclose(fused.x, plain.x, atol=1e-12)
        assert fused.iterations == plain.iterations

    def test_fused_path_eval_counts(self):
        """One fused sweep per accepted step, one residual per trial."""

        def F(x):
            return np.arctan(x)  # forces backtracking from x0 = 20

        def J(x):
            return CsrMatrix.from_coo([0], [0], 1.0 / (1.0 + x * x), (1, 1))

        res = newton_solve(
            F, None, np.array([20.0]), max_steps=40, tol=1e-10,
            residual_jacobian_fn=lambda x: (F(x), J(x)),
        )
        assert res.converged
        assert min(res.step_lengths) < 1.0  # damping engaged
        trials = sum(int(round(np.log2(1.0 / a))) + 1 for a in res.step_lengths)
        assert res.num_jacobian_evals == res.iterations
        assert res.num_residual_evals == trials

    def test_requires_some_jacobian(self):
        with pytest.raises(ValueError):
            newton_solve(lambda x: x, None, np.array([1.0]))

    def test_phase_seconds_reported(self):
        A = _random_spd(6, seed=9)
        b = A.matvec(np.ones(6))
        res = newton_solve(lambda x: A.matvec(x) - b, lambda x: A, np.zeros(6), max_steps=3)
        assert set(res.phase_seconds) == {"evaluate", "preconditioner", "gmres"}
        assert all(v >= 0.0 for v in res.phase_seconds.values())

    def test_preconditioner_hook_called(self):
        calls = []
        A = _random_spd(6, seed=8)
        b = A.matvec(np.ones(6))

        def precond(J):
            calls.append(1)
            return JacobiSmoother(J, iters=2)

        res = newton_solve(
            lambda x: A.matvec(x) - b, lambda x: A, np.zeros(6), max_steps=3, preconditioner_fn=precond
        )
        assert res.converged and len(calls) >= 1


class TestFailureInjection:
    def test_newton_rejects_nonfinite_residual(self):
        def F(x):
            return np.array([np.nan])

        def J(x):
            return CsrMatrix.identity(1)

        with pytest.raises(FloatingPointError):
            newton_solve(F, J, np.array([1.0]))

    def test_gmres_with_singular_matrix_reports_nonconvergence(self):
        # rank-deficient system with incompatible rhs
        A = CsrMatrix.from_coo([0, 1], [0, 1], [1.0, 0.0], (2, 2))
        b = np.array([1.0, 1.0])
        res = gmres(A, b, tol=1e-12, maxiter=20)
        assert not res.converged

    def test_vertical_smoother_guards_zero_block(self):
        # a block that is entirely zero must not produce NaNs
        A = CsrMatrix.from_coo([0, 1, 2, 3], [0, 1, 2, 3], [1.0, 1.0, 0.0, 0.0], (4, 4))
        sm = VerticalLineSmoother(A, 2, iters=1)
        out = sm.apply(np.ones(4))
        assert np.all(np.isfinite(out))

    def test_ilu0_zero_pivot_detected(self):
        A = CsrMatrix.from_coo([0, 0, 1, 1], [0, 1, 0, 1], [0.0, 1.0, 1.0, 1.0], (2, 2))
        with pytest.raises((ZeroDivisionError, ValueError)):
            Ilu0Preconditioner(A)
