"""Convergence time-series: registry, decimation, sinks, counter export."""

from __future__ import annotations

import json
import threading

from repro.observability.timeseries import (
    SeriesRegistry,
    TimeSeries,
    get_series,
    write_series_jsonl,
)


class TestTimeSeries:
    def test_points_carry_both_clocks(self):
        s = TimeSeries("newton.residual")
        s.append(1.0)
        s.append(0.5)
        assert s.count == 2
        (p0, p1) = s.points
        ts_us0, t_unix0, v0 = p0
        assert v0 == 1.0 and p1[2] == 0.5
        # tracer clock is monotone; unix clock is a real epoch timestamp
        assert p1[0] >= ts_us0 >= 0.0
        assert t_unix0 > 1e9

    def test_stride_decimation_at_cap(self):
        s = TimeSeries("x")
        n = TimeSeries.CAP * 3 + 17
        for i in range(n):
            s.append(float(i))
        assert s.count == n
        assert len(s.points) <= TimeSeries.CAP
        values = [p[2] for p in s.points]
        # decimation keeps a deterministic every-Nth subsample, in order,
        # and never drops the most recent region entirely
        assert values == sorted(values)
        assert values[0] == 0.0
        assert values[-1] >= n - 2 * s._stride

    def test_to_dict_round_trip(self):
        s = TimeSeries("gmres.residual", labels={"mode": "assembled"})
        s.append(3.0)
        d = s.to_dict()
        assert d["name"] == "gmres.residual"
        assert d["labels"] == {"mode": "assembled"}
        assert d["count"] == 1 and len(d["points"]) == 1
        json.dumps(d)  # JSON-able without custom encoders


class TestSeriesRegistry:
    def test_record_and_lookup(self):
        reg = SeriesRegistry()
        reg.record("newton.residual", 10.0)
        reg.record("newton.residual", 5.0)
        reg.record("gmres.residual", 1.0, mode="assembled")
        assert reg.get("newton.residual").count == 2
        assert reg.get("gmres.residual", mode="assembled").count == 1
        assert reg.get("gmres.residual", mode="matrix-free") is None
        assert len(reg.all()) == 2

    def test_labels_distinguish_series(self):
        reg = SeriesRegistry()
        reg.record("r", 1.0, mode="a")
        reg.record("r", 2.0, mode="b")
        assert {s.labels["mode"] for s in reg.all()} == {"a", "b"}

    def test_disabled_drops_points(self):
        reg = SeriesRegistry()
        with reg.disabled():
            reg.record("r", 1.0)
        assert reg.all() == []
        reg.record("r", 2.0)
        assert reg.get("r").count == 1

    def test_summary_and_reset(self):
        reg = SeriesRegistry()
        reg.record("newton.residual", 8.0)
        reg.record("newton.residual", 2.0)
        summ = reg.summary()
        assert summ["newton.residual"]["count"] == 2
        assert summ["newton.residual"]["first"] == 8.0
        assert summ["newton.residual"]["last"] == 2.0
        reg.reset()
        assert reg.all() == [] and reg.summary() == {}

    def test_global_registry_is_shared(self):
        reg = get_series()
        assert get_series() is reg

    def test_concurrent_records_lose_nothing(self):
        # all threads hammer the SAME series: the per-series lock must
        # keep the offered-observation count exact under contention
        reg = SeriesRegistry()
        n, threads = 2000, 8

        def worker():
            for i in range(n):
                reg.record("hot", float(i))

        ts = [threading.Thread(target=worker) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert reg.get("hot").count == n * threads
        assert len(reg.get("hot").points) <= TimeSeries.CAP


class TestJsonlSink:
    def test_write_series_jsonl(self, tmp_path):
        reg = SeriesRegistry()
        reg.record("newton.residual", 4.0)
        reg.record("gmres.residual", 2.0, mode="assembled")
        path = write_series_jsonl(tmp_path / "series.jsonl", reg)
        lines = [json.loads(ln) for ln in path.read_text().splitlines()]
        assert {ln["name"] for ln in lines} == {"newton.residual", "gmres.residual"}
        rec = next(ln for ln in lines if ln["name"] == "gmres.residual")
        assert rec["labels"] == {"mode": "assembled"}
        assert rec["points"][0][2] == 2.0
