"""Tests for the mini-Kokkos layer: views, policies, parallel dispatch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kokkos import (
    View,
    DOUBLE,
    fad_spec,
    RangePolicy,
    MDRangePolicy,
    TeamPolicy,
    LaunchBounds,
    DEFAULT_LAUNCH_BOUNDS,
    HostVector,
    HostSerial,
    parallel_for,
    parallel_reduce,
    deep_copy,
)
from repro.kokkos.parallel import Sum, Max, Min, KERNEL_LOG


class TestView:
    def test_double_view_zero_init(self):
        v = View("a", (3, 4))
        assert v.shape == (3, 4)
        assert np.all(v.data == 0.0)
        assert v.span_bytes() == 12 * 8

    def test_fad_view_bytes(self):
        v = View("jac", (10, 8, 2), scalar=fad_spec(16))
        # 17 doubles per scalar
        assert v.scalar.nbytes == 17 * 8
        assert v.span_bytes() == 10 * 8 * 2 * 17 * 8

    def test_inner_flat_index_row_major(self):
        v = View("u", (5, 3, 4))
        assert v.inner_flat_index((0, 0)) == 0
        assert v.inner_flat_index((0, 1)) == 1
        assert v.inner_flat_index((1, 0)) == 4
        assert v.inner_flat_index((2, 3)) == 11
        assert v.inner_extent() == 12

    def test_inner_flat_index_bounds(self):
        v = View("u", (5, 3))
        with pytest.raises(IndexError):
            v.inner_flat_index((3,))
        with pytest.raises(ValueError):
            v.inner_flat_index((0, 0))

    def test_bad_layout_rejected(self):
        with pytest.raises(ValueError):
            View("x", (2,), layout="LayoutWeird")

    def test_fill_and_values(self):
        v = View("x", (4,), scalar=fad_spec(2))
        v.fill(3.0)
        assert np.all(v.values() == 3.0)
        assert np.all(v.data.dx == 0.0)

    def test_setitem_getitem(self):
        v = View("x", (3, 2))
        v[1, 0] = 5.0
        assert v[1, 0] == 5.0

    def test_deep_copy(self):
        a = View("a", (3,))
        b = View("b", (3,))
        a[0] = 7.0
        deep_copy(b, a)
        assert b[0] == 7.0

    def test_deep_copy_incompatible(self):
        with pytest.raises(ValueError):
            deep_copy(View("a", (3,)), View("b", (4,)))


class TestPolicies:
    def test_range_policy(self):
        p = RangePolicy(2, 7)
        assert p.extent == 5
        assert list(p.indices()) == [2, 3, 4, 5, 6]

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            RangePolicy(5, 2)

    def test_mdrange(self):
        p = MDRangePolicy((0, 0), (2, 3))
        assert p.extent == 6
        assert len(list(p.indices())) == 6

    def test_team_policy(self):
        p = TeamPolicy(league_size=10, team_size=4)
        assert p.extent == 10

    def test_launch_bounds_str(self):
        assert str(LaunchBounds(128, 2)) == "128,2"
        assert str(DEFAULT_LAUNCH_BOUNDS) == "default"

    def test_launch_bounds_validation(self):
        with pytest.raises(ValueError):
            LaunchBounds(0, 1)


class TestParallel:
    def test_parallel_for_vector_matches_serial(self):
        out_v = View("ov", (10,))
        out_s = View("os", (10,))

        def make_functor(out):
            def f(i):
                out[i] = np.asarray(i, dtype=float) * 2.0 if not isinstance(i, slice) else 0.0

            return f

        # kernels written for both modes index with i directly
        def functor_v(i):
            out_v.data[i] = np.arange(10.0)[i] * 2.0

        def functor_s(i):
            out_s.data[i] = float(i) * 2.0

        parallel_for("v", RangePolicy(0, 10), functor_v, space=HostVector())
        parallel_for("s", RangePolicy(0, 10), functor_s, space=HostSerial())
        assert np.allclose(out_v.data, out_s.data)

    def test_parallel_for_with_tag(self):
        hits = []

        def functor(tag, i):
            hits.append(tag)

        parallel_for("t", RangePolicy(0, 3, tag="mytag"), functor, space=HostSerial())
        assert hits == ["mytag"] * 3

    def test_parallel_reduce_sum(self):
        def functor(i, acc):
            acc[...] = np.arange(0, 5)[i] if isinstance(i, slice) else float(i)

        tot_v = parallel_reduce("rv", RangePolicy(0, 5), functor, Sum, space=HostVector())
        tot_s = parallel_reduce("rs", RangePolicy(0, 5), functor, Sum, space=HostSerial())
        assert tot_v == tot_s == 10.0

    def test_parallel_reduce_max_min(self):
        data = np.array([3.0, -1.0, 7.0, 2.0])

        def functor(i, acc):
            acc[...] = data[i]

        assert parallel_reduce("m", RangePolicy(0, 4), functor, Max) == 7.0
        assert parallel_reduce("m", RangePolicy(0, 4), functor, Min) == -1.0

    def test_kernel_log_records(self):
        KERNEL_LOG.clear()

        def functor(i):
            pass

        parallel_for("logged_kernel", RangePolicy(0, 4), functor, space=HostSerial())
        assert KERNEL_LOG[-1].name == "logged_kernel"
        assert KERNEL_LOG[-1].extent == 4

    def test_int_policy_coercion(self):
        count = []

        def functor(i):
            count.append(i)

        parallel_for("c", 5, functor, space=HostSerial())
        assert count == [0, 1, 2, 3, 4]

    def test_empty_range_noop(self):
        def functor(i):
            raise AssertionError("must not run")

        parallel_for("e", RangePolicy(3, 3), functor, space=HostVector())


class TestTrace:
    def test_trace_records_kernel_accesses(self):
        from repro.kokkos import TraceContext, TraceView

        ctx = TraceContext()
        u = TraceView(ctx, View("u", (100, 4, 2)))
        r = TraceView(ctx, View("r", (100, 4), scalar=fad_spec(16)))

        acc = ctx.scalar(16)
        for node in range(4):
            acc = acc + u[0, node, 0] * u[0, node, 1]
            r[0, node] = acc
        reads = ctx.reads
        writes = ctx.writes
        assert len(reads) == 8
        assert len(writes) == 4
        assert all(w.components == 17 for w in writes)
        assert ctx.flops > 0

    def test_trace_flop_counts_scale_with_fad_dim(self):
        from repro.kokkos import TraceContext

        ctx0 = TraceContext()
        a0 = ctx0.scalar(0)
        _ = a0 * a0
        ctx16 = TraceContext()
        a16 = ctx16.scalar(16)
        _ = a16 * a16
        assert ctx16.flops > ctx0.flops
        assert ctx16.flops == 1 + 3 * 16

    def test_trace_view_rejects_bad_value(self):
        from repro.kokkos import TraceContext, TraceView

        ctx = TraceContext()
        r = TraceView(ctx, View("r", (10, 2)))
        with pytest.raises(TypeError):
            r[0, 1] = object()

    def test_trace_view_bounds(self):
        from repro.kokkos import TraceContext, TraceView

        ctx = TraceContext()
        r = TraceView(ctx, View("r", (10, 2)))
        with pytest.raises(IndexError):
            _ = r[0, 5]


class TestMDRangeDispatch:
    def test_mdrange_parallel_for_both_spaces(self):
        from repro.kokkos import MDRangePolicy

        for space in (HostVector(), HostSerial()):
            out = np.zeros((3, 4))

            def functor(idx):
                i, j = idx
                out[i, j] = i * 10 + j

            parallel_for("md", MDRangePolicy((0, 0), (3, 4)), functor, space=space)
            expect = np.arange(3)[:, None] * 10 + np.arange(4)[None, :]
            assert np.array_equal(out, expect)

    def test_layout_right_metadata(self):
        v = View("r", (3, 4), layout="LayoutRight")
        assert v.layout == "LayoutRight"
        assert v.inner_flat_index((2,)) == 2  # flattening unchanged

    def test_deep_copy_fad_views(self):
        from repro.kokkos import fad_spec

        a = View("a", (3,), scalar=fad_spec(2))
        b = View("b", (3,), scalar=fad_spec(2))
        a.data.val[...] = 5.0
        a.data.dx[...] = 1.5
        deep_copy(b, a)
        assert np.all(b.data.val == 5.0)
        assert np.all(b.data.dx == 1.5)

    def test_deep_copy_scalar_mismatch(self):
        from repro.kokkos import fad_spec

        with pytest.raises(ValueError):
            deep_copy(View("a", (3,)), View("b", (3,), scalar=fad_spec(2)))
