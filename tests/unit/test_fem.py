"""Tests for the FE substrate: elements, quadrature, basis data, assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem import (
    Quad4,
    Tri3,
    Hex8,
    Wedge6,
    reference_element,
    gauss_legendre_1d,
    quadrature_rule,
    compute_basis_data,
    compute_face_basis_data,
    DofMap,
    CsrMatrix,
    assemble_matrix,
    assemble_vector,
    apply_dirichlet,
    AssemblyPlan,
)


class TestReferenceElements:
    @pytest.mark.parametrize("cls", [Quad4, Tri3, Hex8, Wedge6])
    def test_partition_of_unity(self, cls):
        rng = np.random.default_rng(0)
        if cls in (Tri3,):
            pts = rng.dirichlet([1, 1, 1], size=10)[:, :2]
        elif cls is Wedge6:
            tri = rng.dirichlet([1, 1, 1], size=10)[:, :2]
            pts = np.concatenate([tri, rng.uniform(-1, 1, (10, 1))], axis=1)
        else:
            pts = rng.uniform(-1, 1, (10, cls.dim))
        N = cls.shape(pts)
        assert np.allclose(N.sum(axis=1), 1.0)
        G = cls.grad(pts)
        assert np.allclose(G.sum(axis=1), 0.0, atol=1e-12)

    @pytest.mark.parametrize("cls", [Quad4, Tri3, Hex8, Wedge6])
    def test_kronecker_at_nodes(self, cls):
        N = cls.shape(cls.nodes)
        assert np.allclose(N, np.eye(cls.num_nodes), atol=1e-12)

    @pytest.mark.parametrize("cls", [Quad4, Tri3, Hex8, Wedge6])
    def test_gradient_matches_fd(self, cls):
        rng = np.random.default_rng(1)
        p = rng.uniform(-0.4, 0.4, (1, cls.dim)) + (0.3 if cls in (Tri3, Wedge6) else 0.0)
        G = cls.grad(p)[0]
        eps = 1e-6
        for d in range(cls.dim):
            pp, pm = p.copy(), p.copy()
            pp[0, d] += eps
            pm[0, d] -= eps
            fd = (cls.shape(pp)[0] - cls.shape(pm)[0]) / (2 * eps)
            assert np.allclose(G[:, d], fd, atol=1e-8)

    def test_registry(self):
        assert reference_element("hex8") is Hex8
        with pytest.raises(ValueError):
            reference_element("tet4")


class TestQuadrature:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_gauss_1d_exactness(self, n):
        pts, wts = gauss_legendre_1d(n)
        for deg in range(2 * n):
            exact = (1 - (-1) ** (deg + 1)) / (deg + 1)
            assert np.isclose(np.sum(wts * pts**deg), exact, atol=1e-12)

    def test_hex_rule_has_8_points(self):
        pts, wts = quadrature_rule("hex8", 2)
        assert len(pts) == 8
        assert np.isclose(wts.sum(), 8.0)  # volume of [-1,1]^3

    def test_quad_rule_weight_sum(self):
        _, wts = quadrature_rule("quad4", 2)
        assert np.isclose(wts.sum(), 4.0)

    def test_triangle_rule_area(self):
        for deg in (1, 2, 3):
            pts, wts = quadrature_rule("tri3", deg)
            assert np.isclose(wts.sum(), 0.5)

    def test_triangle_rule_quadratic_exact(self):
        pts, wts = quadrature_rule("tri3", 2)
        # integral of x^2 over unit triangle = 1/12
        assert np.isclose(np.sum(wts * pts[:, 0] ** 2), 1.0 / 12.0)

    def test_wedge_rule_volume(self):
        _, wts = quadrature_rule("wedge6", 2)
        assert np.isclose(wts.sum(), 1.0)  # 0.5 (tri) * 2 (line)

    def test_unknown_type(self):
        with pytest.raises(ValueError):
            quadrature_rule("pyr5")
        with pytest.raises(ValueError):
            gauss_legendre_1d(0)


def _unit_cube_mesh(n=2):
    """n^3 hex mesh of the unit cube."""
    xs = np.linspace(0, 1, n + 1)
    X, Y, Z = np.meshgrid(xs, xs, xs, indexing="ij")
    coords = np.stack([X.ravel(), Y.ravel(), Z.ravel()], axis=1)

    def nid(i, j, k):
        return (i * (n + 1) + j) * (n + 1) + k

    elems = []
    for i in range(n):
        for j in range(n):
            for k in range(n):
                elems.append(
                    [
                        nid(i, j, k),
                        nid(i + 1, j, k),
                        nid(i + 1, j + 1, k),
                        nid(i, j + 1, k),
                        nid(i, j, k + 1),
                        nid(i + 1, j, k + 1),
                        nid(i + 1, j + 1, k + 1),
                        nid(i, j + 1, k + 1),
                    ]
                )
    return coords, np.array(elems, dtype=np.int64)


class TestBasisData:
    def test_cube_volume(self):
        coords, elems = _unit_cube_mesh(2)
        bd = compute_basis_data(coords, elems, "hex8")
        assert np.isclose(bd.cell_volumes().sum(), 1.0)
        assert bd.num_qps == 8
        assert bd.num_nodes == 8

    def test_wbf_integrates_basis(self):
        # sum_n wBF(c,n,q) over n,q = volume
        coords, elems = _unit_cube_mesh(1)
        bd = compute_basis_data(coords, elems, "hex8")
        assert np.isclose(bd.w_bf.sum(), 1.0)

    def test_gradient_reproduces_linear_field(self):
        coords, elems = _unit_cube_mesh(2)
        bd = compute_basis_data(coords, elems, "hex8")
        f = 2.0 * coords[:, 0] - 3.0 * coords[:, 1] + 0.5 * coords[:, 2]
        fe = f[elems]  # (nc, nn)
        grad = np.einsum("cn,cnqd->cqd", fe, bd.grad_bf)
        assert np.allclose(grad[..., 0], 2.0)
        assert np.allclose(grad[..., 1], -3.0)
        assert np.allclose(grad[..., 2], 0.5)

    def test_stretched_mesh_volume(self):
        coords, elems = _unit_cube_mesh(2)
        stretched = coords * np.array([2.0, 3.0, 0.5])
        bd = compute_basis_data(stretched, elems, "hex8")
        assert np.isclose(bd.cell_volumes().sum(), 3.0)

    def test_tangled_mesh_rejected(self):
        coords, elems = _unit_cube_mesh(1)
        bad = coords.copy()
        bad[elems[0, 0]] = bad[elems[0, 6]] + 1.0  # fold the element
        with pytest.raises(ValueError):
            compute_basis_data(bad, elems, "hex8")

    def test_face_basis_area(self):
        # unit square face floating in 3D, at an angle
        coords = np.array(
            [[0, 0, 0], [1, 0, 0.5], [1, 1, 0.5], [0, 1, 0.0]], dtype=float
        )
        faces = np.array([[0, 1, 2, 3]])
        bd = compute_face_basis_data(coords, faces, "quad4")
        exact = np.sqrt(1 + 0.25)  # stretched in x-z
        assert np.isclose(bd.cell_volumes().sum(), exact, rtol=1e-6)

    def test_qp_coords_inside_bounds(self):
        coords, elems = _unit_cube_mesh(2)
        bd = compute_basis_data(coords, elems, "hex8")
        assert bd.qp_coords.min() >= 0.0
        assert bd.qp_coords.max() <= 1.0


class TestDofMap:
    def test_numbering(self):
        elems = np.array([[0, 1, 2], [1, 2, 3]])
        dm = DofMap(4, 2, elems)
        assert dm.num_dofs == 8
        assert dm.dof(3, 1) == 7
        assert dm.node_of(7) == 3
        assert dm.comp_of(7) == 1

    def test_elem_dofs_interleaved(self):
        dm = DofMap(4, 2, np.array([[0, 2]]))
        assert np.array_equal(dm.elem_dofs()[0], [0, 1, 4, 5])

    def test_gather(self):
        dm = DofMap(3, 2, np.array([[0, 2]]))
        sol = np.arange(6.0)
        assert np.array_equal(dm.gather(sol)[0], [0.0, 1.0, 4.0, 5.0])
        with pytest.raises(ValueError):
            dm.gather(np.zeros(5))

    def test_nodal_view(self):
        dm = DofMap(3, 2, np.array([[0, 1]]))
        v = dm.nodal_view(np.arange(6.0))
        assert v.shape == (3, 2)
        assert v[2, 1] == 5.0


class TestCsr:
    def test_from_coo_sums_duplicates(self):
        m = CsrMatrix.from_coo([0, 0, 1], [1, 1, 0], [2.0, 3.0, 4.0], (2, 2))
        dense = m.toarray()
        assert dense[0, 1] == 5.0
        assert dense[1, 0] == 4.0
        assert m.nnz == 2

    def test_matvec_matches_scipy(self):
        rng = np.random.default_rng(0)
        import scipy.sparse as sp

        A = sp.random(40, 30, density=0.1, random_state=0, format="csr")
        m = CsrMatrix.from_scipy(A)
        x = rng.normal(size=30)
        assert np.allclose(m.matvec(x), A @ x)
        y = rng.normal(size=40)
        assert np.allclose(m.rmatvec(y), A.T @ y)

    def test_matvec_empty_rows(self):
        m = CsrMatrix.from_coo([2], [0], [1.5], (4, 3))
        y = m.matvec(np.array([2.0, 0.0, 0.0]))
        assert np.allclose(y, [0, 0, 3.0, 0])

    def test_diagonal(self):
        m = CsrMatrix.from_coo([0, 1, 1], [0, 1, 0], [5.0, 7.0, 1.0], (2, 2))
        assert np.array_equal(m.diagonal(), [5.0, 7.0])

    def test_transpose(self):
        m = CsrMatrix.from_coo([0, 1], [1, 0], [2.0, 3.0], (2, 3))
        t = m.transpose()
        assert t.shape == (3, 2)
        assert np.allclose(t.toarray(), m.toarray().T)

    def test_norms(self):
        m = CsrMatrix.from_coo([0, 0, 1], [0, 1, 1], [3.0, -4.0, 2.0], (2, 2))
        assert m.norm_inf() == 7.0
        assert np.isclose(m.norm_fro(), np.sqrt(29.0))

    def test_identity(self):
        m = CsrMatrix.identity(5)
        x = np.arange(5.0)
        assert np.array_equal(m.matvec(x), x)

    def test_scale_rows(self):
        m = CsrMatrix.from_coo([0, 1], [0, 1], [1.0, 1.0], (2, 2))
        s = m.scale_rows(np.array([2.0, 3.0]))
        assert np.array_equal(s.diagonal(), [2.0, 3.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            CsrMatrix((2, 2), [0, 1], [0], [1.0])  # indptr too short
        with pytest.raises(ValueError):
            CsrMatrix((2, 2), [0, 1, 1], [5], [1.0])  # col out of range

    @given(st.integers(2, 20), st.integers(0, 60))
    @settings(max_examples=25, deadline=None)
    def test_coo_roundtrip_property(self, n, nnz):
        rng = np.random.default_rng(nnz * 131 + n)
        rows = rng.integers(0, n, nnz)
        cols = rng.integers(0, n, nnz)
        vals = rng.normal(size=nnz)
        m = CsrMatrix.from_coo(rows, cols, vals, (n, n))
        dense = np.zeros((n, n))
        np.add.at(dense, (rows, cols), vals)
        assert np.allclose(m.toarray(), dense)


class TestAssembly:
    def test_assemble_vector_matches_loop(self):
        elems = np.array([[0, 1], [1, 2]])
        dm = DofMap(3, 1, elems)
        local = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = assemble_vector(dm, local)
        assert np.allclose(out, [1.0, 5.0, 4.0])

    def test_assemble_matrix_1d_laplace(self):
        # three-node 1D chain with k_e = [[1,-1],[-1,1]]
        elems = np.array([[0, 1], [1, 2]])
        dm = DofMap(3, 1, elems)
        ke = np.array([[1.0, -1.0], [-1.0, 1.0]])
        A = assemble_matrix(dm, np.stack([ke, ke]))
        expect = np.array([[1, -1, 0], [-1, 2, -1], [0, -1, 1]], dtype=float)
        assert np.allclose(A.toarray(), expect)

    def test_shape_validation(self):
        dm = DofMap(3, 1, np.array([[0, 1]]))
        with pytest.raises(ValueError):
            assemble_matrix(dm, np.zeros((1, 3, 3)))
        with pytest.raises(ValueError):
            assemble_vector(dm, np.zeros((2, 2)))

    def test_apply_dirichlet(self):
        elems = np.array([[0, 1], [1, 2]])
        dm = DofMap(3, 1, elems)
        ke = np.array([[1.0, -1.0], [-1.0, 1.0]])
        A = assemble_matrix(dm, np.stack([ke, ke]))
        b = np.array([0.0, 1.0, 0.0])
        A2, b2 = apply_dirichlet(A, b, np.array([0]), 5.0)
        dense = A2.toarray()
        assert np.allclose(dense[0], [1, 0, 0])
        assert b2[0] == 5.0
        # interior rows untouched
        assert np.allclose(dense[1], [-1, 2, -1])

    def test_apply_dirichlet_out_of_range(self):
        dm = DofMap(2, 1, np.array([[0, 1]]))
        A = assemble_matrix(dm, np.ones((1, 2, 2)))
        with pytest.raises(ValueError):
            apply_dirichlet(A, np.zeros(2), np.array([9]))

    def test_plan_matrix_matches_one_shot(self):
        """Plan fills reproduce from_coo assembly entry for entry."""
        rng = np.random.default_rng(0)
        elems = np.array([[0, 1, 2], [1, 2, 3], [2, 3, 4]])
        dm = DofMap(5, 2, elems)
        plan = AssemblyPlan(dm)
        k = dm.dofs_per_elem
        for trial in range(3):  # repeated numeric fills, same structure
            local = rng.normal(size=(3, k, k))
            A_plan = plan.assemble_matrix(local)
            A_ref = assemble_matrix(dm, local)
            assert np.allclose(A_plan.toarray(), A_ref.toarray(), atol=1e-14)
            assert np.array_equal(A_plan.indptr, A_ref.indptr)
            assert np.array_equal(A_plan.indices, A_ref.indices)
        assert plan.num_matrix_fills == 3

    def test_plan_vector_matches_one_shot(self):
        rng = np.random.default_rng(1)
        elems = np.array([[0, 1], [1, 2], [2, 3]])
        dm = DofMap(4, 1, elems)
        plan = AssemblyPlan(dm)
        local = rng.normal(size=(3, 2))
        assert np.allclose(plan.assemble_vector(local), assemble_vector(dm, local))

    def test_plan_dirichlet_matches_apply_dirichlet(self):
        """The fused BC masks equal the legacy row-replacement pass."""
        rng = np.random.default_rng(2)
        elems = np.array([[0, 1, 2], [2, 3, 4], [4, 5, 0]])
        dm = DofMap(6, 2, elems)
        bc = np.array([0, 1, 7])
        plan = AssemblyPlan(dm, bc_dofs=bc)
        local = rng.normal(size=(3, 6, 6))
        A_plan = plan.assemble_matrix(local, diag_scale=3.5)
        A_ref, _ = apply_dirichlet(
            assemble_matrix(dm, local), np.zeros(12), bc, diag_scale=3.5
        )
        assert np.allclose(A_plan.toarray(), A_ref.toarray(), atol=1e-14)

    def test_plan_validation(self):
        dm = DofMap(3, 1, np.array([[0, 1], [1, 2]]))
        plan = AssemblyPlan(dm, bc_dofs=np.array([0]))
        with pytest.raises(ValueError):
            plan.assemble_matrix(np.zeros((1, 2, 2)))  # wrong cell count
        with pytest.raises(ValueError):
            plan.assemble_vector(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            plan.assemble_matrix(np.zeros((2, 2, 2)), diag_scale=-1.0)
        with pytest.raises(ValueError):
            AssemblyPlan(dm, bc_dofs=np.array([99]))
        no_bc = AssemblyPlan(dm)
        with pytest.raises(ValueError):
            no_bc.assemble_matrix(np.zeros((2, 2, 2)), diag_scale=1.0)

    def test_dirichlet_solution_exact(self):
        """Solve 1D Laplace with Dirichlet ends; expect linear profile."""
        n = 10
        elems = np.stack([np.arange(n), np.arange(1, n + 1)], axis=1)
        dm = DofMap(n + 1, 1, elems)
        h = 1.0 / n
        ke = np.array([[1.0, -1.0], [-1.0, 1.0]]) / h
        A = assemble_matrix(dm, np.tile(ke, (n, 1, 1)))
        b = np.zeros(n + 1)
        A2, b2 = apply_dirichlet(A, b, np.array([0, n]), np.array([0.0, 1.0]))
        x = np.linalg.solve(A2.toarray(), b2)
        assert np.allclose(x, np.linspace(0, 1, n + 1), atol=1e-10)
