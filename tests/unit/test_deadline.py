"""Cooperative deadline tests: Deadline/SolveTimeout + solver propagation.

The load-bearing properties:

* expiry raises a TYPED exception at a cooperative boundary, carrying
  the last completed checkpoint (or ``None`` before any step completes
  -- never partial garbage);
* a solve that stays within budget is BITWISE identical to one run
  without any deadline (checks only read the clock);
* resuming from a timeout's checkpoint reproduces the uninterrupted
  trajectory bitwise.
"""

from types import SimpleNamespace

import numpy as np
import pytest
import scipy.sparse as sp

from repro.fem.sparse import CsrMatrix
from repro.resilience import Deadline, SolveTimeout
from repro.solvers import gmres, newton_solve


class FakeClock:
    """Manually advanced clock injected into Deadline."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TickingClock:
    """Advances a fixed amount on every read (deterministic 'wall time')."""

    def __init__(self, dt: float):
        self.t = 0.0
        self.dt = dt

    def __call__(self) -> float:
        self.t += self.dt
        return self.t


def _laplace_1d(n):
    main = 2.0 * np.ones(n)
    off = -1.0 * np.ones(n - 1)
    return CsrMatrix.from_scipy(sp.diags([off, main, off], [-1, 0, 1]).tocsr())


def _cubic_system():
    """Small smooth nonlinear system needing several Newton steps."""
    c = np.array([1.0, 8.0, 27.0, 64.0])

    def F(x):
        return x**3 - c

    def J(x):
        return CsrMatrix.from_scipy(sp.diags(3.0 * x**2).tocsr())

    return F, J, np.array([3.0, 3.0, 3.0, 3.0])


class TestDeadline:
    def test_elapsed_remaining_expired(self):
        clock = FakeClock()
        d = Deadline(5.0, clock=clock)
        assert d.elapsed() == 0.0
        assert d.remaining() == 5.0
        assert not d.expired
        clock.advance(4.0)
        d.check("anywhere")  # within budget: no raise
        clock.advance(1.0)
        assert d.expired
        with pytest.raises(SolveTimeout):
            d.check("somewhere")

    def test_zero_budget_expires_immediately(self):
        d = Deadline(0.0, clock=FakeClock())
        with pytest.raises(SolveTimeout):
            d.check("first check")

    def test_timeout_is_typed_and_self_describing(self):
        clock = FakeClock()
        d = Deadline(2.0, clock=clock)
        clock.advance(3.0)
        sentinel = SimpleNamespace(step=3)
        with pytest.raises(SolveTimeout) as exc_info:
            d.check("newton.step 3", checkpoint=sentinel)
        exc = exc_info.value
        assert exc.budget_s == 2.0
        assert exc.elapsed_s == 3.0
        assert exc.phase == "newton.step 3"
        assert exc.checkpoint is sentinel
        assert "deadline" in str(exc)
        assert "newton.step 3" in str(exc)
        assert isinstance(exc, RuntimeError)

    def test_after_classmethod(self):
        assert Deadline.after(1.5, clock=FakeClock()).budget_s == 1.5


class TestGmresDeadline:
    def test_mid_cycle_expiry_is_typed(self):
        A = _laplace_1d(40)
        b = np.ones(40)
        # every clock read advances; the budget admits the first few
        # inner-iteration checks, then expires mid-cycle
        deadline = Deadline(2.0, clock=TickingClock(0.25))
        with pytest.raises(SolveTimeout) as exc_info:
            gmres(A, b, tol=1e-12, restart=30, maxiter=200, deadline=deadline)
        assert exc_info.value.phase.startswith("gmres cycle")

    def test_no_deadline_and_lavish_deadline_bitwise_equal(self):
        A = _laplace_1d(40)
        b = np.linspace(1.0, 2.0, 40)
        plain = gmres(A, b, tol=1e-10, restart=20, maxiter=200)
        timed = gmres(
            A, b, tol=1e-10, restart=20, maxiter=200,
            deadline=Deadline(1.0e9, clock=FakeClock()),
        )
        assert plain.iterations == timed.iterations
        assert np.array_equal(plain.x, timed.x)


class TestNewtonDeadline:
    def test_budget_shorter_than_one_step_immediate_typed_timeout(self):
        F, J, x0 = _cubic_system()
        with pytest.raises(SolveTimeout) as exc_info:
            newton_solve(
                F, J, x0, max_steps=10, tol=1e-12,
                deadline=Deadline(0.0, clock=FakeClock()),
            )
        exc = exc_info.value
        # no step completed: no partial garbage, and the phase names the
        # very first cooperative boundary
        assert exc.checkpoint is None
        assert exc.phase == "newton.initial"

    def test_within_budget_solve_bitwise_equals_deadline_free(self):
        F, J, x0 = _cubic_system()
        plain = newton_solve(F, J, x0, max_steps=20, tol=1e-12)
        timed = newton_solve(
            F, J, x0, max_steps=20, tol=1e-12,
            deadline=Deadline(1.0e9, clock=FakeClock()),
        )
        assert plain.iterations == timed.iterations
        assert plain.residual_norms == timed.residual_norms
        assert np.array_equal(plain.x, timed.x)

    def test_timeout_carries_last_checkpoint(self):
        F, J, x0 = _cubic_system()
        clock = FakeClock()

        # expire the budget from the step callback: deterministic expiry
        # at an exact loop position, independent of machine speed
        def expire_after_second_step(step, x, fnorm, lin):
            if step == 1:
                clock.advance(10.0)

        with pytest.raises(SolveTimeout) as exc_info:
            newton_solve(
                F, J, x0, max_steps=20, tol=1e-14, checkpoint_every=1,
                deadline=Deadline(1.0, clock=clock),
                callback=expire_after_second_step,
            )
        ckpt = exc_info.value.checkpoint
        assert ckpt is not None
        assert ckpt.step == 2
        assert len(ckpt.residual_norms) == 3  # initial + 2 accepted steps

    def test_resume_after_timeout_is_bitwise_identical(self):
        F, J, x0 = _cubic_system()
        reference = newton_solve(F, J, x0, max_steps=20, tol=1e-12, checkpoint_every=1)

        clock = FakeClock()

        def expire_after_second_step(step, x, fnorm, lin):
            if step == 1:
                clock.advance(10.0)

        with pytest.raises(SolveTimeout) as exc_info:
            newton_solve(
                F, J, x0, max_steps=20, tol=1e-12, checkpoint_every=1,
                deadline=Deadline(1.0, clock=clock),
                callback=expire_after_second_step,
            )
        resumed = newton_solve(
            F, J, x0, max_steps=20, tol=1e-12, checkpoint_every=1,
            resume_from=exc_info.value.checkpoint,
        )
        assert resumed.converged == reference.converged
        assert resumed.iterations == reference.iterations
        assert resumed.residual_norms == reference.residual_norms
        assert np.array_equal(resumed.x, reference.x)
