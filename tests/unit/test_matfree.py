"""Unit tests for the matrix-free operator path and its satellite fixes.

Covers the :class:`MatrixFreeJacobian` protocol (matvec, diagonal,
column blocks, Galerkin collapse) against hand-assembled dense
references and the real assembled Jacobian; the GMRES matvec budget
and fused-orthogonalization regressions; the Newton finiteness probe
for opaque operators (with a NaN-poisoned matrix-free operator under a
:class:`RecoveryPolicy`); and the fail-fast :class:`OperatorModeError`
for preconditioners that need an assembled matrix.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.app import AntarcticaConfig, AntarcticaTest, VelocityConfig
from repro.app.velocity_solver import StokesVelocityProblem
from repro.fem.matfree import MatrixFreeJacobian, OperatorModeError
from repro.fem.sparse import CsrMatrix
from repro.resilience import RecoveryPolicy
from repro.solvers.gmres import gmres
from repro.solvers.multigrid import ColumnCollapseMdsc, MatrixFreeColumnCollapseMdsc
from repro.solvers.newton import _jacobian_finite, newton_solve
from repro.solvers.reductions import BlockReducer
from repro.solvers.smoothers import MatrixFreeVerticalLineSmoother, VerticalLineSmoother

SMALL = AntarcticaConfig(
    resolution_km=400.0,
    num_layers=3,
    velocity=VelocityConfig(operator_mode="assembled"),
)


@pytest.fixture(scope="module")
def problem_pair():
    """Assembled and matrix-free problems on one shared mesh."""
    t = AntarcticaTest.build(SMALL)
    mf = StokesVelocityProblem(
        t.mesh, t.geometry, replace(SMALL.velocity, operator_mode="matrix-free")
    )
    return t.problem, mf


@pytest.fixture(scope="module")
def jacobian_pair(problem_pair):
    pa, pm = problem_pair
    rng = np.random.default_rng(5)
    u = rng.normal(size=pa.dofmap.num_dofs) * 10.0
    u[pa.bc_dofs] = 0.0
    return pa.jacobian(u), pm.jacobian(u), u


def _dense_reference(elem_dofs, local_jac, n, bc=None, diag_scale=1.0):
    """Scatter element blocks into a dense matrix the slow obvious way."""
    A = np.zeros((n, n))
    for c in range(elem_dofs.shape[0]):
        dofs = elem_dofs[c]
        for i, gi in enumerate(dofs):
            for j, gj in enumerate(dofs):
                A[gi, gj] += local_jac[c, i, j]
    if bc is not None:
        A[bc, :] = 0.0
        A[bc, bc] = diag_scale
    return A


def _tiny_operator(seed=0, with_bc=True, diag_scale=2.5):
    rng = np.random.default_rng(seed)
    # two columns of 3 levels sharing a face: overlapping connectivity
    elem_dofs = np.array([[0, 1, 2, 3], [2, 3, 4, 5], [4, 5, 6, 7]])
    local_jac = rng.normal(size=(3, 4, 4))
    bc = np.array([0, 5]) if with_bc else None
    op = MatrixFreeJacobian(elem_dofs, local_jac, 8, bc_dofs=bc, diag_scale=diag_scale)
    ref = _dense_reference(elem_dofs, local_jac, 8, bc, diag_scale)
    return op, ref


class TestMatrixFreeJacobian:
    def test_matvec_matches_dense_reference(self):
        op, ref = _tiny_operator()
        rng = np.random.default_rng(1)
        for _ in range(4):
            v = rng.normal(size=8)
            assert np.allclose(op.matvec(v), ref @ v, rtol=1e-14, atol=1e-14)

    def test_matvec_without_bc(self):
        op, ref = _tiny_operator(with_bc=False)
        v = np.arange(8.0)
        assert np.allclose(op @ v, ref @ v, rtol=1e-14, atol=1e-14)

    def test_diagonal_matches_dense(self):
        op, ref = _tiny_operator()
        assert np.allclose(op.diagonal(), np.diag(ref), rtol=1e-14, atol=1e-14)

    def test_column_blocks_match_dense(self):
        op, ref = _tiny_operator()
        blocks = op.column_blocks(4)
        for p in range(2):
            sl = slice(4 * p, 4 * (p + 1))
            assert np.allclose(blocks[p], ref[sl, sl], rtol=1e-14, atol=1e-14)

    def test_collapse_matches_dense_galerkin(self):
        op, ref = _tiny_operator()
        agg = np.array([0, 1, 0, 1, 0, 1, 0, 1])  # collapse to 2 coarse dofs
        P = np.zeros((8, 2))
        P[np.arange(8), agg] = 1.0
        Ac = op.collapse(agg, 2)
        assert np.allclose(Ac.toarray(), P.T @ ref @ P, rtol=1e-13, atol=1e-13)

    def test_matvec_counter_and_shape(self):
        op, _ = _tiny_operator()
        assert op.shape == (8, 8)
        assert op.num_matvecs == 0
        op.matvec(np.zeros(8))
        op @ np.zeros(8)
        assert op.num_matvecs == 2

    def test_isfinite_flags_poisoned_blocks(self):
        op, _ = _tiny_operator()
        assert op.isfinite()
        op.local_jac[1, 2, 3] = np.nan
        assert not op.isfinite()

    def test_bytes_per_matvec_positive(self):
        op, _ = _tiny_operator()
        assert op.bytes_per_matvec > 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            MatrixFreeJacobian(np.zeros((2, 3), dtype=int), np.zeros((2, 3, 2)), 6)
        with pytest.raises(ValueError, match="diag_scale"):
            MatrixFreeJacobian(
                np.zeros((1, 2), dtype=int), np.zeros((1, 2, 2)), 2,
                bc_dofs=np.array([0]), diag_scale=0.0,
            )
        op, _ = _tiny_operator()
        with pytest.raises(ValueError, match="length"):
            op.matvec(np.zeros(7))


class TestAgainstAssembled:
    """The real problem's matrix-free Jacobian equals its assembled CSR."""

    def test_matvec_matches_assembled(self, jacobian_pair):
        A, B, u = jacobian_pair
        assert isinstance(A, CsrMatrix)
        assert isinstance(B, MatrixFreeJacobian)
        rng = np.random.default_rng(11)
        for _ in range(3):
            v = rng.normal(size=len(u))
            ya = A.matvec(v)
            scale = np.max(np.abs(ya))
            assert np.allclose(B.matvec(v), ya, rtol=1e-12, atol=1e-12 * scale)

    def test_diagonal_matches_assembled(self, jacobian_pair):
        A, B, _ = jacobian_pair
        da = A.diagonal()
        scale = np.max(np.abs(da))
        assert np.allclose(B.diagonal(), da, rtol=1e-12, atol=1e-12 * scale)

    def test_plan_wrap_counter(self, problem_pair):
        _, pm = problem_pair
        before = pm.plan.num_operator_wraps
        u = np.zeros(pm.dofmap.num_dofs)
        pm.jacobian(u)
        assert pm.plan.num_operator_wraps == before + 1
        assert pm.plan.num_matrix_fills == 0  # matrix-free mode never fills CSR


class TestMatrixFreeSmoothers:
    def test_vertical_line_matches_assembled(self, problem_pair, jacobian_pair):
        pa, _ = problem_pair
        A, B, _ = jacobian_pair
        blk = pa.mesh.levels * 2
        ref = VerticalLineSmoother(A, blk, iters=2)
        alt = MatrixFreeVerticalLineSmoother(B, blk, iters=2)
        rng = np.random.default_rng(21)
        r = rng.normal(size=A.shape[0])
        xa, xm = ref.apply(r), alt.apply(r)
        scale = np.max(np.abs(xa))
        assert np.allclose(xm, xa, rtol=1e-12, atol=1e-12 * scale)

    def test_tiled_solve_bitwise_equals_batched(self, jacobian_pair):
        _, B, _ = jacobian_pair
        blk = 6  # 3 levels * 2 dofs
        full = MatrixFreeVerticalLineSmoother(B, blk, iters=2)
        tiled = MatrixFreeVerticalLineSmoother(B, blk, iters=2, tile=7)
        r = np.sin(np.arange(B.n, dtype=np.float64))
        assert np.array_equal(tiled.apply(r), full.apply(r))

    def test_requires_column_blocks(self):
        with pytest.raises(OperatorModeError, match="column_blocks"):
            MatrixFreeVerticalLineSmoother(CsrMatrix.identity(4), 2)

    def test_mdsc_matches_assembled(self, problem_pair, jacobian_pair):
        pa, _ = problem_pair
        A, B, _ = jacobian_pair
        kw = dict(
            num_columns=pa.mesh.footprint.num_nodes,
            levels=pa.mesh.levels,
            smoother_iters=2,
        )
        ref = ColumnCollapseMdsc(A, **kw)
        alt = MatrixFreeColumnCollapseMdsc(B, **kw)
        rng = np.random.default_rng(23)
        r = rng.normal(size=A.shape[0])
        xa, xm = ref.apply(r), alt.apply(r)
        scale = np.max(np.abs(xa))
        assert np.allclose(xm, xa, rtol=1e-9, atol=1e-9 * scale)

    def test_mdsc_requires_collapse(self):
        with pytest.raises(OperatorModeError, match="collapse"):
            MatrixFreeColumnCollapseMdsc(CsrMatrix.identity(8), num_columns=2, levels=2)


class _CountingOperator:
    """Opaque matvec+shape operator wrapping a dense matrix."""

    def __init__(self, M, poison=False):
        self.M = np.asarray(M, dtype=np.float64)
        self.shape = self.M.shape
        self.count = 0
        self.poison = poison

    def matvec(self, x):
        self.count += 1
        y = self.M @ x
        if self.poison:
            y[0] = np.nan
        return y


def _spd(n, seed=3):
    rng = np.random.default_rng(seed)
    Q = rng.normal(size=(n, n))
    return Q @ Q.T + n * np.eye(n)


class TestGmresMatvecBudget:
    """Regression: ``maxiter`` is a hard matvec budget across restarts.

    Previously each restart cycle ran its full Krylov depth and then
    spent an extra closing true-residual matvec, so a solve with
    ``maxiter=15, restart=10`` could perform 22 operator applications --
    in matrix-free mode each one a full element sweep.
    """

    def test_budget_honored_exactly(self):
        # hard problem (tol=0 never converges): every cycle runs full
        op = _CountingOperator(_spd(40))
        b = np.arange(1.0, 41.0)
        res = gmres(op, b, tol=0.0, restart=10, maxiter=15)
        assert res.matvecs == op.count  # accounting matches reality
        assert op.count <= 15
        assert res.flag == "maxiter"

    def test_no_initial_matvec_without_x0(self):
        op = _CountingOperator(_spd(12))
        b = np.ones(12)
        res = gmres(op, b, tol=1e-12, restart=12, maxiter=50)
        # r0 = b when x0 is None: no operator application needed
        assert res.converged
        assert res.matvecs == op.count

    def test_initial_matvec_counted_with_x0(self):
        op = _CountingOperator(_spd(12))
        b = np.ones(12)
        res = gmres(op, b, x0=np.full(12, 0.1), tol=1e-12, restart=12, maxiter=50)
        assert res.converged
        assert res.matvecs == op.count
        assert res.matvecs >= 2  # initial residual + at least one inner

    @pytest.mark.parametrize("maxiter", [1, 2, 3, 7])
    def test_tiny_budgets_never_overrun(self, maxiter):
        op = _CountingOperator(_spd(30, seed=9))
        b = np.linspace(1.0, 2.0, 30)
        res = gmres(op, b, tol=0.0, restart=5, maxiter=maxiter)
        assert op.count <= maxiter
        assert res.matvecs == op.count


class TestFusedOrthogonalization:
    def test_fused_matches_mgs_solution(self):
        M = _spd(60, seed=4)
        b = np.sin(np.arange(60.0))
        ref = gmres(_CountingOperator(M), b, tol=1e-10, restart=60, maxiter=200, orth="mgs")
        alt = gmres(_CountingOperator(M), b, tol=1e-10, restart=60, maxiter=200, orth="fused")
        assert ref.converged and alt.converged
        scale = np.max(np.abs(ref.x))
        assert np.allclose(alt.x, ref.x, rtol=1e-8, atol=1e-8 * scale)

    def test_unknown_orth_rejected(self):
        with pytest.raises(ValueError, match="orth"):
            gmres(_CountingOperator(_spd(4)), np.ones(4), orth="cgs2")

    def test_dot_many_bitwise_equals_dot(self):
        n = 64
        reducer = BlockReducer(np.array([0, 20, 45, n]))
        rng = np.random.default_rng(8)
        X = rng.normal(size=(5, n))
        y = rng.normal(size=n)
        batched = reducer.dot_many(X, y)
        rows = np.array([reducer.dot(x, y) for x in X])
        assert np.array_equal(batched, rows)

    def test_byte_accounting_fields_present(self):
        op = _CountingOperator(_spd(20))
        res = gmres(op, np.ones(20), tol=1e-10, restart=20, maxiter=60)
        assert res.operator_mode == "opaque"
        assert res.matvec_bytes == 0.0  # opaque operators are unpriced
        assert res.stream_bytes > 0.0
        assert res.total_bytes == res.stream_bytes


class TestJacobianFiniteProbe:
    """Regression: ``_jacobian_finite`` returned True for any operator
    without ``.data`` -- NaN-poisoned matrix-free Jacobians sailed
    through the step-boundary health check."""

    def test_csr_paths(self):
        A = CsrMatrix.identity(3)
        assert _jacobian_finite(A)
        A.data[1] = np.inf
        assert not _jacobian_finite(A)

    def test_matrix_free_own_check(self):
        op, _ = _tiny_operator()
        assert _jacobian_finite(op)
        op.local_jac[0, 0, 0] = np.nan
        assert not _jacobian_finite(op)

    def test_opaque_operator_probed_via_matvec(self):
        assert _jacobian_finite(_CountingOperator(np.eye(4)))
        assert not _jacobian_finite(_CountingOperator(np.eye(4), poison=True))
        M = np.eye(4)
        M[2, 2] = np.nan
        assert not _jacobian_finite(_CountingOperator(M))

    def test_unprobeable_object_assumed_healthy(self):
        assert _jacobian_finite(object())

    def test_newton_rejects_poisoned_matrix_free_without_policy(self):
        op, ref = _tiny_operator(with_bc=False)
        op.local_jac[0, 0, 0] = np.nan
        xstar = np.arange(1.0, 9.0)
        with pytest.raises(FloatingPointError, match="evaluate"):
            newton_solve(
                residual_fn=lambda x: ref @ (x - xstar),
                jacobian_fn=lambda x: op,
                x0=np.zeros(8),
                max_steps=4,
            )

    def test_newton_recovers_poisoned_matrix_free_with_policy(self):
        """A transiently poisoned matrix-free Jacobian (one bad sweep)
        is re-evaluated under the policy and the solve completes."""
        elem = np.array([[i, (i + 1) % 8] for i in range(8)])
        rng = np.random.default_rng(31)
        # each dof sits in two elements, so +5 I per block => +10 on the
        # assembled diagonal: comfortably invertible
        blocks = rng.normal(size=(8, 2, 2)) + 5.0 * np.eye(2)
        ref = _dense_reference(elem, blocks, 8)  # the exact Jacobian
        xstar = np.linspace(1.0, 2.0, 8)
        calls = {"jac": 0}

        def jacobian_fn(x):
            calls["jac"] += 1
            op = MatrixFreeJacobian(elem, blocks.copy(), 8)
            if calls["jac"] == 1:  # the first sweep comes back poisoned
                op.local_jac[3, 1, 0] = np.nan
            return op

        policy = RecoveryPolicy()
        res = newton_solve(
            residual_fn=lambda x: ref @ (x - xstar),
            jacobian_fn=jacobian_fn,
            x0=np.zeros(8),
            max_steps=6,
            tol=1e-10,
            resilience=policy,
        )
        assert res.converged
        assert np.allclose(res.x, xstar, rtol=1e-8)
        assert policy.log.count("detection", "nonfinite_evaluation") >= 1
        assert policy.log.count("recovery", "reevaluation") >= 1
        assert calls["jac"] >= 2  # the poisoned sweep was re-run


class TestOperatorModeRouting:
    """Regression: CSR-only preconditioners previously died with an
    opaque ``AttributeError`` deep inside block extraction when handed a
    matrix-free operator."""

    def _mf_problem(self, precond):
        cfg = replace(
            SMALL,
            velocity=replace(
                SMALL.velocity, operator_mode="matrix-free", preconditioner=precond
            ),
        )
        return AntarcticaTest.build(cfg).problem

    def test_unsupported_preconditioner_fails_fast(self):
        p = self._mf_problem("mdsc-amg")
        with pytest.raises(OperatorModeError) as exc:
            p.solve()
        msg = str(exc.value)
        assert "mdsc-amg" in msg
        assert "operator_mode" in msg

    @pytest.mark.parametrize("precond", ["jacobi", "vline", "none"])
    def test_supported_preconditioners_solve(self, precond):
        sol = self._mf_problem(precond).solve()
        assert sol.diagnostics["operator_mode"] == "matrix-free"
        assert np.all(np.isfinite(sol.u))

    def test_auto_orth_resolution(self, problem_pair):
        pa, pm = problem_pair
        assert pa.solve().diagnostics["gmres_orth"] == "mgs"
        assert pm.solve().diagnostics["gmres_orth"] == "fused"
