"""Degenerate SPMD decompositions must work without caller special-casing.

Three shapes a robust decomposition layer must survive, all of which
show up in practice (tiny meshes, aggressive masks, failed-rank
redistribution leaving a rank with nothing):

* ``nparts == 1`` -- the whole SPMD machinery collapsing to serial;
* a partition with **zero interior neighbors** -- two disconnected ice
  islands split exactly along the disconnect, so no rank exchanges
  anything;
* an **empty-owned-rows part** -- a rank that owns elements but no
  nodes (every node of its elements is shared with, and owned by, a
  lower rank), so its matrix-row block is empty.

``HaloExchange`` and ``DistributedMatrix.matvec`` (plus the residual /
Jacobian exchanges) must handle all three identically to the generic
case: bitwise-equal to serial assembly, no special-casing by callers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import resilience as res
from repro.app.config import VelocityConfig
from repro.app.velocity_solver import StokesVelocityProblem
from repro.fem.distributed import DistributedStokesAssembly
from repro.mesh.extrude import extrude_footprint
from repro.mesh.geometry import IceGeometry
from repro.mesh.partition import HaloExchange, Partition, partition_footprint
from repro.mesh.planar import masked_quad_footprint, quad_footprint

#: fully-iced slab: the huge dome radius keeps thickness near h_max over
#: the whole (small) domain, so any footprint meshes without masking
GEO = IceGeometry(
    lx=3.0e5,
    ly=2.0e5,
    center=(1.5e5, 1.0e5),
    radius=2.0e6,
    h_max=2000.0,
    bed_amplitude=0.0,
    min_thickness=10.0,
    secondary_dome=False,
)


@pytest.fixture(autouse=True)
def _plane_disarmed():
    res.fault_plane().disarm()
    yield
    res.fault_plane().disarm()


def _problem(fp, nlayers=2):
    mesh = extrude_footprint(fp, GEO, nlayers)
    return StokesVelocityProblem(mesh, GEO, VelocityConfig())


def _partition(fp, elem_part):
    """Hand-built Partition with the standard min-adjacent-rank node rule."""
    elem_part = np.asarray(elem_part, dtype=np.int64)
    nparts = int(elem_part.max()) + 1
    node_part = np.full(fp.num_nodes, np.iinfo(np.int64).max, dtype=np.int64)
    for k in range(fp.nodes_per_elem):
        np.minimum.at(node_part, fp.elems[:, k], elem_part)
    return Partition(fp, nparts, elem_part, node_part)


def _assert_assembly_matches_serial(problem, partition):
    """Distributed residual/Jacobian/SpMV over ``partition`` == serial, bitwise."""
    plan, mesh = problem.plan, problem.mesh
    spmd = DistributedStokesAssembly(plan, partition, mesh.levels, mesh.nlayers)
    nparts = partition.nparts
    rng = np.random.default_rng(7)
    nc, k = plan.elem_dofs.shape
    local_r = rng.normal(size=(nc, k))
    local_j = rng.normal(size=(nc, k, k))

    f = spmd.assemble_residual([local_r[spmd.owned_elems(p)] for p in range(nparts)])
    assert np.array_equal(f, plan.assemble_vector(local_r))

    A = spmd.assemble_jacobian([local_j[spmd.owned_elems(p)] for p in range(nparts)])
    x = rng.normal(size=plan.num_dofs)
    assert np.array_equal(A.matvec(x), plan.assemble_matrix(local_j).matvec(x))
    return spmd


class TestSinglePart:
    """nparts=1: every exchange is a self-exchange, nothing is ghosted."""

    def test_halo_exchange_is_identity(self):
        fp = quad_footprint(4, 3, GEO.lx, GEO.ly)
        halo = HaloExchange(partition_footprint(fp, 1))
        assert halo.neighbors(0) == []
        assert len(halo.ghost_nodes(0)) == 0
        field = np.linspace(0.0, 1.0, fp.num_nodes)
        assert np.array_equal(halo.gather(0, field), field)
        contrib = np.linspace(2.0, 3.0, fp.num_nodes)
        assert np.array_equal(halo.scatter_add([contrib]), contrib)

    def test_assembly_matches_serial(self):
        fp = quad_footprint(4, 3, GEO.lx, GEO.ly)
        problem = _problem(fp)
        spmd = _assert_assembly_matches_serial(problem, partition_footprint(fp, 1))
        assert len(spmd.owned_dofs(0)) == problem.plan.num_dofs

    def test_armed_gather_with_no_neighbors(self):
        # the checksum-verified path must no-op cleanly with zero
        # neighbor messages (nothing to corrupt, nothing to verify)
        fp = quad_footprint(4, 3, GEO.lx, GEO.ly)
        halo = HaloExchange(partition_footprint(fp, 1))
        field = np.linspace(0.0, 1.0, fp.num_nodes)
        sched = res.FaultSchedule([res.BitFlip("halo.payload", at=(0,))])
        with res.fault_injection(sched):
            out = halo.gather(0, field)
        assert np.array_equal(out, field)
        assert sched.fired_count() == 0  # no message ever existed


class TestZeroNeighborPartition:
    """Two disconnected islands, split along the disconnect: no rank
    exchanges anything, yet every exchange entry point still works."""

    def _islands(self):
        fp = masked_quad_footprint(
            6, 2, GEO.lx, GEO.ly,
            lambda x, y: (x < GEO.lx / 3.0) | (x > 2.0 * GEO.lx / 3.0),
        )
        part = _partition(fp, np.where(fp.elem_centers()[:, 0] < GEO.lx / 2.0, 0, 1))
        return fp, part

    def test_partition_has_no_interior_neighbors(self):
        fp, part = self._islands()
        halo = HaloExchange(part)
        for p in range(part.nparts):
            assert halo.neighbors(p) == []
            assert len(halo.ghost_nodes(p)) == 0

    def test_gather_and_scatter_work_without_messages(self):
        fp, part = self._islands()
        halo = HaloExchange(part)
        field = np.linspace(0.0, 1.0, fp.num_nodes)
        total = np.zeros(fp.num_nodes)
        for p in range(part.nparts):
            local = halo.gather(p, field)
            assert np.array_equal(local, field[halo.local_nodes(p)])
            total[halo.local_nodes(p)] += 1.0
        assert np.array_equal(total, np.ones(fp.num_nodes))  # disjoint cover
        contribs = [np.ones(len(halo.local_nodes(p))) for p in range(part.nparts)]
        assert np.array_equal(halo.scatter_add(contribs), np.ones(fp.num_nodes))

    def test_assembly_matches_serial(self):
        fp, part = self._islands()
        spmd = _assert_assembly_matches_serial(_problem(fp), part)
        # sanity: the decomposition really is communication-free
        for p in range(part.nparts):
            assert spmd._gather_ghost[p] == {}
            assert spmd._spmv_ghost[p] == {}


class TestEmptyOwnedRowsPart:
    """A 3-quad strip split [0, 1, 0]: rank 1 owns the middle element
    but every one of its nodes borders a rank-0 element, so rank 1 owns
    zero nodes -- an empty matrix-row block."""

    def _strip(self):
        fp = quad_footprint(3, 1, GEO.lx, GEO.ly)
        return fp, _partition(fp, [0, 1, 0])

    def test_part_owns_elements_but_no_rows(self):
        fp, part = self._strip()
        assert len(part.owned_elems(1)) == 1
        assert len(part.owned_nodes(1)) == 0
        halo = HaloExchange(part)
        # rank 1's whole local set is ghosts of rank 0
        assert halo.neighbors(1) == [0]
        assert np.array_equal(halo.ghost_nodes(1), halo.local_nodes(1))

    def test_gather_and_scatter_with_all_ghost_part(self):
        fp, part = self._strip()
        halo = HaloExchange(part)
        field = np.linspace(0.0, 1.0, fp.num_nodes)
        for p in range(2):
            assert np.array_equal(halo.gather(p, field), field[halo.local_nodes(p)])
        contribs = [
            np.ones(len(halo.local_nodes(0))),
            np.ones(len(halo.local_nodes(1))),
        ]
        out = halo.scatter_add(contribs)
        counts = np.zeros(fp.num_nodes)
        for p in range(2):
            counts[halo.local_nodes(p)] += 1.0
        assert np.array_equal(out, counts)  # overlap adds, exactly once per part

    def test_assembly_matches_serial(self):
        fp, part = self._strip()
        problem = _problem(fp)
        spmd = _assert_assembly_matches_serial(problem, part)
        assert len(spmd.owned_dofs(1)) == 0  # the degenerate row block
        assert len(spmd.owned_dofs(0)) == problem.plan.num_dofs

    def test_armed_gather_verifies_all_ghost_payload(self):
        # the checksum path must also work when the payload is the whole
        # local set: corrupt it, detect it, refetch it
        fp, part = self._strip()
        halo = HaloExchange(part)
        field = np.linspace(0.0, 1.0, fp.num_nodes)
        clean = halo.gather(1, field)
        policy = res.RecoveryPolicy()
        sched = res.FaultSchedule([res.DropMessage("halo.payload", at=(0,))])
        with res.fault_injection(sched, policy=policy):
            got = halo.gather(1, field)
        assert np.array_equal(got, clean)
        assert policy.log.count("recovery", "halo_refetch") == 1
