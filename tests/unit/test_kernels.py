"""Tests for the StokesFOResid kernel variants (the paper's Fig. 2)."""

import numpy as np
import pytest

from repro.core import (
    StokesFOResidBaseline,
    StokesFOResidOptimized,
    make_stokes_fields,
    run_kernel,
    local_residual_blocks,
    local_jacobian_blocks,
    get_variant,
    variant_names,
    TABLE2_LAUNCH_CONFIGS,
    default_launch_bounds,
    JACOBIAN_FAD_SIZE,
)
from repro.core.fields import TraceFields
from repro.autodiff.sfad import SFad
from repro.kokkos.space import HostSerial


def _fill_fields(fields, seed=0):
    """Populate kernel inputs with deterministic plausible data."""
    rng = np.random.default_rng(seed)
    nc, nq = fields.num_cells, fields.num_qps
    nn = fields.num_nodes

    def setv(view, arr):
        if view.scalar.is_fad:
            view.data.val[...] = arr
            # give inputs nonzero derivative content so the Jacobian path
            # is exercised end to end
            view.data.dx[...] = rng.normal(size=arr.shape + (view.scalar.fad_dim,)) * 0.01
        else:
            view.data[...] = arr

    setv(fields.Ugrad, rng.normal(size=(nc, nq, 2, 3)) * 1e-3)
    setv(fields.muLandIce, rng.uniform(1e3, 1e5, size=(nc, nq)))
    setv(fields.force, rng.normal(size=(nc, nq, 2)) * 10.0)
    fields.wBF.data[...] = rng.uniform(0.1, 1.0, size=(nc, nn, nq))
    fields.wGradBF.data[...] = rng.normal(size=(nc, nn, nq, 3)) * 1e-3
    return fields


class TestNumericEquivalence:
    @pytest.mark.parametrize("mode", ["residual", "jacobian"])
    def test_baseline_equals_optimized(self, mode):
        fb = _fill_fields(make_stokes_fields(6, mode=mode), seed=1)
        fo = _fill_fields(make_stokes_fields(6, mode=mode), seed=1)
        run_kernel(f"baseline-{mode}", fb)
        run_kernel(f"optimized-{mode}", fo)
        assert np.allclose(fb.Residual.values(), fo.Residual.values(), rtol=1e-12)
        if mode == "jacobian":
            assert np.allclose(fb.Residual.data.dx, fo.Residual.data.dx, rtol=1e-12)

    @pytest.mark.parametrize("variant", ["baseline-residual", "optimized-residual"])
    def test_vectorized_equals_serial(self, variant):
        fv = _fill_fields(make_stokes_fields(4), seed=2)
        fs = _fill_fields(make_stokes_fields(4), seed=2)
        run_kernel(variant, fv)
        run_kernel(variant, fs, space=HostSerial())
        assert np.allclose(fv.Residual.values(), fs.Residual.values(), rtol=1e-12)

    def test_residual_formula_manual_check(self):
        """One cell, one qp worth of contributions checked by hand."""
        f = make_stokes_fields(1, num_nodes=8, num_qps=8)
        _fill_fields(f, seed=3)
        run_kernel("optimized-residual", f)
        ug = f.Ugrad.data
        mu = f.muLandIce.data
        frc = f.force.data
        expected = np.zeros((8, 2))
        for qp in range(8):
            m = mu[0, qp]
            s00 = 2 * m * (2 * ug[0, qp, 0, 0] + ug[0, qp, 1, 1])
            s11 = 2 * m * (2 * ug[0, qp, 1, 1] + ug[0, qp, 0, 0])
            s01 = m * (ug[0, qp, 1, 0] + ug[0, qp, 0, 1])
            s02 = m * ug[0, qp, 0, 2]
            s12 = m * ug[0, qp, 1, 2]
            for n in range(8):
                g = f.wGradBF.data[0, n, qp]
                w = f.wBF.data[0, n, qp]
                expected[n, 0] += s00 * g[0] + s01 * g[1] + s02 * g[2] + frc[0, qp, 0] * w
                expected[n, 1] += s01 * g[0] + s11 * g[1] + s12 * g[2] + frc[0, qp, 1] * w
        assert np.allclose(f.Residual.values()[0], expected, rtol=1e-12)

    def test_side_set_branch_changes_result(self):
        f1 = _fill_fields(make_stokes_fields(2), seed=4)
        f2 = _fill_fields(make_stokes_fields(2), seed=4)
        StokesFOResidBaseline(f1, side_set_equations=False)(slice(None))
        StokesFOResidBaseline(f2, side_set_equations=True)(slice(None))
        assert not np.allclose(f1.Residual.values(), f2.Residual.values())

    def test_mode_type_mismatch_rejected(self):
        f = make_stokes_fields(2, mode="residual")
        with pytest.raises(ValueError):
            run_kernel("baseline-jacobian", f)
        fj = make_stokes_fields(2, mode="jacobian")
        with pytest.raises(ValueError):
            run_kernel("baseline-residual", fj)


class TestLocalBlocks:
    def test_residual_block_layout(self):
        f = _fill_fields(make_stokes_fields(3), seed=5)
        run_kernel("optimized-residual", f)
        blocks = local_residual_blocks(f)
        assert blocks.shape == (3, 16)
        # node-major layout: block[:, 2*n + c] == Residual[:, n, c]
        assert np.allclose(blocks[:, 2 * 3 + 1], f.Residual.values()[:, 3, 1])

    def test_jacobian_blocks_shape(self):
        f = _fill_fields(make_stokes_fields(3, mode="jacobian"), seed=6)
        run_kernel("optimized-jacobian", f)
        jac = local_jacobian_blocks(f)
        assert jac.shape == (3, 16, 16)

    def test_jacobian_blocks_require_fad(self):
        f = make_stokes_fields(2, mode="residual")
        with pytest.raises(ValueError):
            local_jacobian_blocks(f)


class TestVariantsRegistry:
    def test_variant_registry(self):
        names = variant_names()
        # the paper's 2x2 evaluation matrix plus the fusion-only ablation
        for key in (
            "baseline-jacobian",
            "baseline-residual",
            "optimized-jacobian",
            "optimized-residual",
            "fused-jacobian",
            "fused-residual",
            "viscosity-residual",
            "viscosity-jacobian",
        ):
            assert key in names
        assert len(names) == 8

    def test_fused_only_matches_numerics(self):
        for mode in ("residual", "jacobian"):
            fb = _fill_fields(make_stokes_fields(4, mode=mode), seed=8)
            ff = _fill_fields(make_stokes_fields(4, mode=mode), seed=8)
            run_kernel(f"optimized-{mode}", fb)
            run_kernel(f"fused-{mode}", ff)
            assert np.allclose(fb.Residual.values(), ff.Residual.values(), rtol=1e-12)

    def test_metadata_flags(self):
        b = get_variant("baseline-jacobian")
        o = get_variant("optimized-jacobian")
        assert not b.fused and o.fused
        assert not b.local_accum and o.local_accum
        assert b.branch_in_kernel and not o.branch_in_kernel
        assert not b.compile_time_bounds and o.compile_time_bounds
        assert b.fad_dim == 16 and get_variant("baseline-residual").fad_dim == 0

    def test_register_profiles(self):
        o = get_variant("optimized-jacobian")
        assert o.profile_relaxed.total_vgprs == 256
        assert o.profile_tight.scratch_bytes > 0
        r = get_variant("optimized-residual")
        assert r.profile_relaxed.arch_vgprs == 128
        assert r.profile_tight.arch_vgprs == 84 and r.profile_tight.accum_vgprs == 4

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            get_variant("hyperoptimized-hessian")

    def test_table2_configs(self):
        assert len(TABLE2_LAUNCH_CONFIGS) == 5
        assert str(TABLE2_LAUNCH_CONFIGS[0]) == "default"
        assert str(TABLE2_LAUNCH_CONFIGS[1]) == "128,2"

    def test_default_launch_bounds(self):
        assert default_launch_bounds("jacobian").max_threads == 256
        assert default_launch_bounds("residual").max_threads == 1024
        with pytest.raises(ValueError):
            default_launch_bounds("gradient")


class TestTraceMode:
    """The same kernel body must yield sensible per-thread traces."""

    def _trace(self, variant_key, mode):
        fields = make_stokes_fields(16, mode=mode)
        tf = TraceFields(fields)
        v = get_variant(variant_key)
        v.make_functor(tf)(0)
        return tf.ctx

    def test_baseline_residual_counts(self):
        ctx = self._trace("baseline-residual", "residual")
        writes = [a for a in ctx.accesses if a.write]
        reads = [a for a in ctx.accesses if not a.write]
        # init: 16 writes; qp loop: 8*8*2 RMW writes; force loop: 8*8*2 writes
        assert len(writes) == 16 + 128 + 128
        # qp loop reads: 8*(7 + 8*(3+2)) ; force loop: 8*(2 + 8*(1+2))
        assert len([r for r in reads if r.view == "Residual"]) == 256

    def test_optimized_writes_residual_once(self):
        ctx = self._trace("optimized-residual", "residual")
        res_writes = [a for a in ctx.accesses if a.write and a.view == "Residual"]
        res_reads = [a for a in ctx.accesses if not a.write and a.view == "Residual"]
        assert len(res_writes) == 16
        assert len(res_reads) == 0

    def test_jacobian_trace_has_fad_components(self):
        ctx = self._trace("optimized-jacobian", "jacobian")
        ug = [a for a in ctx.accesses if a.view == "Ugrad"]
        assert all(a.components == JACOBIAN_FAD_SIZE + 1 for a in ug)
        # the basis views carry MeshScalarT, which is the Fad type in the
        # Jacobian evaluation (this is why the Jacobian moves ~17x the data)
        wg = [a for a in ctx.accesses if a.view == "wGradBF"]
        assert all(a.components == JACOBIAN_FAD_SIZE + 1 for a in wg)
        ctx_r = self._trace("optimized-residual", "residual")
        wr = [a for a in ctx_r.accesses if a.view == "wGradBF"]
        assert all(a.components == 1 for a in wr)

    def test_optimized_fewer_accesses_than_baseline(self):
        nb = len(self._trace("baseline-jacobian", "jacobian").accesses)
        no = len(self._trace("optimized-jacobian", "jacobian").accesses)
        assert no < nb

    def test_flops_comparable_between_variants(self):
        fb = self._trace("baseline-residual", "residual").flops
        fo = self._trace("optimized-residual", "residual").flops
        # same math modulo the removed re-initialization; within 20%
        assert abs(fb - fo) / fb < 0.2
