"""Tests for AD-dispatching math ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import SFad, ops


def var(v, n=1, i=0):
    return SFad(n).independent(np.asarray(v, dtype=float), i)


class TestElementary:
    def test_sqrt_plain(self):
        assert ops.sqrt(4.0) == 2.0

    def test_sqrt_fad(self):
        z = ops.sqrt(var(4.0))
        assert z.val == 2.0
        assert np.allclose(z.dx, [0.25])

    def test_exp_log_inverse(self):
        x = var(1.3)
        z = ops.log(ops.exp(x))
        assert np.allclose(z.val, 1.3)
        assert np.allclose(z.dx, [1.0])

    def test_power_fractional(self):
        x = var(8.0)
        z = ops.power(x, 1.0 / 3.0)
        assert np.allclose(z.val, 2.0)
        assert np.allclose(z.dx, [(1.0 / 3.0) * 8.0 ** (-2.0 / 3.0)])

    def test_power_plain(self):
        assert ops.power(2.0, 3.0) == 8.0

    def test_trig(self):
        x = var(0.5)
        s, c = ops.sin(x), ops.cos(x)
        assert np.allclose(s.dx, [np.cos(0.5)])
        assert np.allclose(c.dx, [-np.sin(0.5)])
        t = ops.tanh(x)
        assert np.allclose(t.dx, [1.0 - np.tanh(0.5) ** 2])

    def test_hypot3(self):
        z = ops.hypot3(var(1.0, 3, 0), var(2.0, 3, 1), var(2.0, 3, 2))
        assert np.allclose(z.val, 3.0)
        assert np.allclose(z.dx, [1 / 3, 2 / 3, 2 / 3])


class TestSelection:
    def test_where_plain(self):
        assert np.array_equal(ops.where(np.array([True, False]), 1.0, 2.0), [1.0, 2.0])

    def test_where_fad_selects_derivatives(self):
        x = var([1.0, 5.0], 2, 0)
        y = var([3.0, 2.0], 2, 1)
        z = ops.where(x.val > y.val, x, y)
        assert np.allclose(z.val, [3.0, 5.0])
        assert np.allclose(z.dx[0], [0.0, 1.0])
        assert np.allclose(z.dx[1], [1.0, 0.0])

    def test_maximum_minimum(self):
        x = var([1.0, 5.0])
        z = ops.maximum(x, 2.0)
        assert np.allclose(z.val, [2.0, 5.0])
        assert np.allclose(z.dx[:, 0], [0.0, 1.0])
        w = ops.minimum(x, 2.0)
        assert np.allclose(w.val, [1.0, 2.0])

    def test_clip(self):
        x = var([-1.0, 0.5, 3.0])
        z = ops.clip(x, 0.0, 1.0)
        assert np.allclose(z.val, [0.0, 0.5, 1.0])
        assert np.allclose(z.dx[:, 0], [0.0, 1.0, 0.0])

    def test_mixed_fad_const_where(self):
        x = var([1.0, 2.0])
        z = ops.where(np.array([True, False]), x, 7.0)
        assert np.allclose(z.val, [1.0, 7.0])
        assert np.allclose(z.dx[:, 0], [1.0, 0.0])


class TestProperties:
    @given(st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=50, deadline=None)
    def test_sqrt_derivative_fd(self, a):
        z = ops.sqrt(var(a))
        h = 1e-7 * max(1.0, a)
        fd = (np.sqrt(a + h) - np.sqrt(a - h)) / (2 * h)
        assert np.allclose(z.dx[0], fd, rtol=1e-4)

    @given(st.floats(min_value=-3.0, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_exp_derivative_is_value(self, a):
        z = ops.exp(var(a))
        assert np.allclose(z.dx[0], z.val)

    @given(
        st.floats(min_value=0.1, max_value=10.0),
        st.floats(min_value=-2.0, max_value=2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_power_derivative_fd(self, a, p):
        z = ops.power(var(a), p)
        h = 1e-6 * max(1.0, a)
        fd = ((a + h) ** p - (a - h) ** p) / (2 * h)
        assert np.allclose(z.dx[0], fd, rtol=1e-4, atol=1e-6)
