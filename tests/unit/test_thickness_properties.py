"""Property tests of the thickness evolver (the transient engine's core).

Three properties the engine's acceptance gates lean on, checked over
generated inputs rather than one trajectory:

* **conservation** -- with zero SMB/BMB, fluxes live on interior edges
  only and every edge's contribution telescopes (leaves the left cell,
  enters the right), so total volume is invariant to roundoff for ANY
  thickness and velocity field under the CFL bound;
* **monotonicity** -- first-order upwind under the CFL bound is a
  positive scheme: for a uniform (discretely divergence-free) velocity
  an interior cell's update is a convex combination of old values, so
  no new interior maxima appear and thickness stays nonnegative.
  Boundary cells are excluded deliberately: the closed (no-flux)
  boundary makes ice pile up against the downstream wall, which is
  correct physics, not an upwind defect;
* **typed CFL refusal** -- any dt beyond the stability bound raises
  :class:`~repro.physics.thickness.CflViolationError` carrying both dt
  and the bound (the adaptive stepper's contract), and the explicit
  ``enforce_cfl=False`` opt-out suppresses it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.mesh.planar import quad_footprint
from repro.physics import CflViolationError, ThicknessEvolver

NX, NY = 6, 5  # small closed footprint; every boundary edge has no flux
FOOTPRINT = quad_footprint(NX, NY, 6.0e5, 5.0e5)
NE = FOOTPRINT.num_elems

thickness_fields = hnp.arrays(
    np.float64,
    (NE,),
    elements=st.floats(0.0, 3000.0, allow_nan=False, allow_infinity=False),
)
velocity_fields = hnp.arrays(
    np.float64,
    (NE, 2),
    elements=st.floats(-400.0, 400.0, allow_nan=False, allow_infinity=False),
)


def _interior_cells(evolver: ThicknessEvolver) -> np.ndarray:
    """Cells with a full set of interior edges (no no-flux wall)."""
    counts = np.zeros(evolver.footprint.num_elems, dtype=np.int64)
    np.add.at(counts, evolver.edge_left, 1)
    np.add.at(counts, evolver.edge_right, 1)
    return counts == evolver.footprint.nodes_per_elem


@given(h=thickness_fields, v=velocity_fields, frac=st.floats(0.05, 0.95))
def test_zero_source_step_conserves_total_volume(h, v, frac):
    """Interior-edge upwind fluxes telescope: volume is an invariant."""
    evolver = ThicknessEvolver(FOOTPRINT)
    dt_max = evolver.max_stable_dt(v)
    dt = frac * dt_max if np.isfinite(dt_max) else 1.0e3
    h_new = evolver.step(h, v, dt)
    v0, v1 = evolver.total_volume(h), evolver.total_volume(h_new)
    # the clip H >= 0 may legitimately create volume for pathological
    # generated fields; the evolver accounts for it exactly, so the
    # conservation identity is V1 = V0 + clipped
    clipped = evolver.last_step_stats["clipped_volume"]
    scale = max(abs(v0), 1.0)
    assert abs(v1 - (v0 + clipped)) <= 1.0e-12 * scale


@given(
    h=thickness_fields,
    vx=st.floats(-300.0, 300.0, allow_nan=False),
    vy=st.floats(-300.0, 300.0, allow_nan=False),
    frac=st.floats(0.05, 0.95),
)
def test_uniform_advection_is_monotone(h, vx, vy, frac):
    """Upwind + CFL: no new interior maxima, no negative thickness."""
    evolver = ThicknessEvolver(FOOTPRINT)
    v = np.tile([vx, vy], (NE, 1))
    dt_max = evolver.max_stable_dt(v)
    dt = frac * dt_max if np.isfinite(dt_max) else 1.0e3
    h_new = evolver.step(h, v, dt)
    assert np.all(h_new >= 0.0)
    hi = h.max()
    interior = _interior_cells(evolver)
    assert h_new[interior].max() <= hi + 1.0e-9 * max(hi, 1.0)


@given(v=velocity_fields, factor=st.floats(1.001, 100.0))
def test_cfl_violation_raises_typed_error(v, factor):
    """dt past the bound refuses with a typed, self-describing error."""
    evolver = ThicknessEvolver(FOOTPRINT)
    dt_max = evolver.max_stable_dt(v)
    if not np.isfinite(dt_max):
        return  # zero velocity: every dt is stable
    h = np.full(NE, 100.0)
    dt_bad = factor * dt_max
    with pytest.raises(CflViolationError) as exc:
        evolver.step(h, v, dt_bad)
    assert isinstance(exc.value, ValueError)  # old except ValueError still works
    assert exc.value.dt == dt_bad
    assert exc.value.dt_max == dt_max
    # the explicit opt-out (sub-cycling callers) takes the step anyway
    evolver.step(h, v, dt_bad, enforce_cfl=False)


@settings(max_examples=20)
@given(h=thickness_fields, v=velocity_fields, leak=st.floats(1.0e-6, 1.0e-2))
def test_flux_leak_breaks_conservation(h, v, leak):
    """The planted CI defect must actually violate the invariant."""
    evolver = ThicknessEvolver(FOOTPRINT)
    dt_max = evolver.max_stable_dt(v)
    dt = 0.5 * dt_max if np.isfinite(dt_max) else 1.0e3
    h_leaky = evolver.step(h, v, dt, flux_leak=leak)
    leaked_clip = evolver.last_step_stats["clipped_volume"]
    h_clean = evolver.step(h, v, dt)
    clean_clip = evolver.last_step_stats["clipped_volume"]
    v0 = evolver.total_volume(h)
    clean_err = abs(evolver.total_volume(h_clean) - (v0 + clean_clip))
    leaky_err = abs(evolver.total_volume(h_leaky) - (v0 + leaked_clip))
    if np.any(h_leaky != h_clean):  # leak touched at least one active flux
        assert leaky_err > clean_err
