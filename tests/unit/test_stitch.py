"""SPMD trace stitching: clock alignment, rank->pid, critical path."""

from __future__ import annotations

import pytest

from repro.observability.stitch import (
    DRIVER_PID,
    RankStream,
    align_clocks,
    critical_path_table,
    halo_compute_split,
    split_rank_streams,
    stitch_process_labels,
    stitch_spans,
)
from repro.observability.tracer import Span


def _span(id, name, ts_us, dur_us, *, cat="phase", pid=0, parent=-1, **args):
    return Span(
        id=id, name=name, cat=cat, ts_us=float(ts_us), dur_us=float(dur_us),
        pid=pid, tid=0, depth=0 if parent == -1 else 1, parent=parent, args=args,
    )


class TestAlignClocks:
    def test_offsets_align_sync_span_ends(self):
        # rank clocks with different epochs: the solve ends at local
        # 1000us on rank 0 but 4000us on rank 1 (clock born earlier)
        s0 = RankStream(0, [_span(0, "velocity.solve", 0.0, 1000.0)])
        s1 = RankStream(1, [_span(1, "velocity.solve", 3000.0, 1000.0)])
        align_clocks([s0, s1])
        assert s0.offset_us == 0.0
        assert s1.offset_us == -3000.0
        # post-shift, both sync spans end at the same instant
        assert s0.spans[0].end_us + s0.offset_us == s1.spans[0].end_us + s1.offset_us

    def test_stream_without_sync_span_untouched(self):
        s0 = RankStream(0, [_span(0, "velocity.solve", 0.0, 10.0)])
        s1 = RankStream(1, [_span(1, "other", 5.0, 1.0)], offset_us=7.0)
        align_clocks([s0, s1])
        assert s1.offset_us == 7.0

    def test_custom_sync_name(self):
        s0 = RankStream(0, [_span(0, "barrier", 10.0, 5.0)])
        s1 = RankStream(1, [_span(1, "barrier", 110.0, 5.0)])
        align_clocks([s0, s1], sync_name="barrier")
        assert s1.offset_us == -100.0


class TestSplitAndStitch:
    def test_split_partitions_by_rank_arg(self):
        spans = [
            _span(0, "newton.step", 0.0, 100.0),
            _span(1, "rank.spmv", 1.0, 2.0, cat="compute", rank=0),
            _span(2, "halo.recv", 3.0, 1.0, cat="halo", rank=1),
            _span(3, "rank.spmv", 4.0, 2.0, cat="compute", rank=7),  # out of range
        ]
        streams, driver = split_rank_streams(spans, nparts=2)
        assert [s.name for s in streams[0].spans] == ["rank.spmv"]
        assert [s.name for s in streams[1].spans] == ["halo.recv"]
        assert {s.name for s in driver} == {"newton.step", "rank.spmv"}

    def test_stitch_maps_rank_to_pid_and_driver(self):
        spans = [
            _span(0, "newton.step", 0.0, 100.0),
            _span(1, "rank.spmv", 1.0, 2.0, cat="compute", rank=1),
        ]
        streams, driver = split_rank_streams(spans, nparts=4)
        out = stitch_spans(streams, driver, nparts=4)
        by_name = {s.name: s for s in out}
        assert by_name["rank.spmv"].pid == 1
        assert by_name["rank.spmv"].args["rank"] == 1
        assert by_name["newton.step"].pid == DRIVER_PID(4) == 4

    def test_stitch_applies_offsets_clamps_and_sorts(self):
        st0 = RankStream(0, [_span(0, "a", 50.0, 1.0, rank=0)], offset_us=0.0)
        st1 = RankStream(1, [_span(1, "b", 10.0, 1.0, rank=1)], offset_us=-40.0)
        out = stitch_spans([st0, st1])
        # -30us clamps to 0, and the result is sorted by start time
        assert [s.name for s in out] == ["b", "a"]
        assert out[0].ts_us == 0.0
        assert all(out[i].ts_us <= out[i + 1].ts_us for i in range(len(out) - 1))

    def test_originals_not_mutated(self):
        orig = _span(0, "rank.spmv", 5.0, 1.0, cat="compute", rank=2)
        stitch_spans([RankStream(2, [orig], offset_us=100.0)], [], nparts=4)
        assert orig.ts_us == 5.0 and orig.pid == 0

    def test_process_labels(self):
        labels = stitch_process_labels(2)
        assert labels == {0: "rank 0", 1: "rank 1", 2: "driver"}


class TestHaloComputeSplit:
    def _step_trace(self):
        # newton.step -> spmd.spmv container -> rank-tagged leaves
        return [
            _span(0, "newton.step", 0.0, 100.0, step=0),
            _span(1, "spmd.spmv", 1.0, 50.0, cat="halo", parent=0),
            _span(2, "halo.recv", 2.0, 10.0, cat="halo", parent=1, rank=0),
            _span(3, "rank.spmv", 12.0, 30.0, cat="compute", parent=1, rank=0),
            _span(4, "halo.recv", 2.0, 20.0, cat="halo", parent=1, rank=1),
            _span(5, "rank.spmv", 22.0, 10.0, cat="compute", parent=1, rank=1),
        ]

    def test_per_rank_split_and_critical_rank(self):
        (rec,) = halo_compute_split(self._step_trace())
        assert rec["step"] == 0
        assert rec["per_rank"][0]["halo_s"] == pytest.approx(10e-6)
        assert rec["per_rank"][0]["compute_s"] == pytest.approx(30e-6)
        assert rec["per_rank"][1]["halo_s"] == pytest.approx(20e-6)
        assert rec["halo_s"] == pytest.approx(30e-6)
        assert rec["compute_s"] == pytest.approx(40e-6)
        # both ranks total 40us; max() ties break to the first -- assert
        # the invariant rather than the tie
        totals = {r: b["halo_s"] + b["compute_s"] for r, b in rec["per_rank"].items()}
        assert totals[rec["critical_rank"]] == max(totals.values())
        assert rec["halo_fraction"] == pytest.approx(30.0 / 70.0)

    def test_containers_not_double_counted(self):
        (rec,) = halo_compute_split(self._step_trace())
        # spmd.spmv is cat="halo" but has no rank arg: only leaves count
        assert rec["halo_s"] < 50e-6

    def test_table_renders(self):
        table = critical_path_table(halo_compute_split(self._step_trace()))
        assert "halo share" in table and "critical rank" in table
        assert critical_path_table([]).startswith("(no newton.step")


class TestStitchedSolveTrace:
    def test_four_rank_profile_stitches_all_ranks(self):
        # acceptance: stitched --nparts 4 trace contains spans from all
        # four ranks plus the driver, with monotone clock-aligned stamps
        from dataclasses import replace as dreplace

        from repro import observability as obs
        from repro.app.antarctica import AntarcticaTest
        from repro.app.config import AntarcticaConfig, VelocityConfig

        cfg = AntarcticaConfig(
            resolution_km=400.0, num_layers=4,
            velocity=dreplace(VelocityConfig(), nparts=4),
        )
        test = AntarcticaTest.build(cfg)
        with obs.tracing() as tr:
            test.problem.solve()
        streams, driver = split_rank_streams(tr.spans, 4)
        align_clocks(streams)
        stitched = stitch_spans(streams, driver, nparts=4)
        pids = {s.pid for s in stitched}
        assert pids == {0, 1, 2, 3, DRIVER_PID(4)}
        assert all(
            stitched[i].ts_us <= stitched[i + 1].ts_us for i in range(len(stitched) - 1)
        )
        records = halo_compute_split(stitched)
        assert records and all(set(r["per_rank"]) == {0, 1, 2, 3} for r in records)
        assert all(0.0 < r["halo_fraction"] < 1.0 for r in records)
