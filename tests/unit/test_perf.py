"""Tests for the performance models (roofline, time model, Phi)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import A100, MI250X_GCD, GPUSimulator, ProblemSize
from repro.perf import (
    theoretical_minimum,
    RooflinePoint,
    RooflineModel,
    TimeOrientedModel,
    performance_portability,
    efficiency_time,
    efficiency_data_movement,
    portability_table,
    format_table,
    ascii_scatter,
    write_csv,
)


class TestTheoretical:
    def test_implementation_independent(self):
        """The application bound is a property of the kernel, not the code."""
        b = theoretical_minimum("baseline-jacobian", 1000)
        o = theoretical_minimum("optimized-jacobian", 1000)
        assert b.total_bytes == o.total_bytes

    def test_jacobian_moves_17x_residual(self):
        """SFad<16> multiplies every array by 17 doubles (paper: ~16x)."""
        j = theoretical_minimum("optimized-jacobian", 1000)
        r = theoretical_minimum("optimized-residual", 1000)
        assert j.total_bytes / r.total_bytes == pytest.approx(17.0)

    def test_scales_with_cells(self):
        a = theoretical_minimum("optimized-residual", 1000)
        b = theoretical_minimum("optimized-residual", 3000)
        assert b.total_bytes == 3 * a.total_bytes

    def test_residual_inventory(self):
        """Residual kernel minimum: known slot counts x 8 bytes."""
        t = theoretical_minimum("optimized-residual", 1)
        # reads: Ugrad 6x8 + mu 8 + force 16 + wBF 64 + wGradBF 192 = 328
        assert t.read_bytes == 328 * 8
        # writes: Residual 8 nodes x 2 comps
        assert t.write_bytes == 16 * 8
        assert set(t.per_view_bytes) == {"Ugrad", "muLandIce", "force", "wBF", "wGradBF", "Residual"}

    def test_min_time(self):
        t = theoretical_minimum("optimized-residual", 256_000)
        assert t.min_time_s(1.0e12) == pytest.approx(t.total_bytes / 1.0e12)
        with pytest.raises(ValueError):
            t.min_time_s(0.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            theoretical_minimum("optimized-residual", 0)


class TestRoofline:
    def test_ridge_point(self):
        m = RooflineModel(A100)
        assert m.ridge_point == pytest.approx(9.7e12 / 1.55e12)

    def test_attainable_min_of_ceilings(self):
        m = RooflineModel(A100)
        low = float(m.attainable_gflops(0.1))
        high = float(m.attainable_gflops(1000.0))
        assert low == pytest.approx(0.1 * 1.55e12 / 1e9)
        assert high == pytest.approx(9.7e12 / 1e9)

    def test_fraction_of_roofline_bounds(self):
        m = RooflineModel(A100)
        sim = GPUSimulator(A100)
        for key in ("baseline-jacobian", "optimized-jacobian"):
            pt = RooflineModel.point_from_profile(sim.run(key))
            frac = m.fraction_of_roofline(pt)
            assert 0.0 < frac <= 1.0

    def test_kernels_memory_bound(self):
        """Paper: these kernels sit left of the ridge on both GPUs."""
        for spec in (A100, MI250X_GCD):
            m = RooflineModel(spec)
            sim = GPUSimulator(spec)
            for key in ("baseline-jacobian", "optimized-jacobian", "baseline-residual", "optimized-residual"):
                pt = RooflineModel.point_from_profile(sim.run(key))
                assert m.is_memory_bound(pt), key

    def test_optimization_increases_ai(self):
        """Reducing data movement raises arithmetic intensity (Fig. 3)."""
        sim = GPUSimulator(A100)
        b = sim.run("baseline-jacobian")
        o = sim.run("optimized-jacobian")
        assert o.arithmetic_intensity > b.arithmetic_intensity

    def test_ceiling_series_monotone(self):
        ai, gf = RooflineModel(MI250X_GCD).ceiling_series()
        assert np.all(np.diff(gf) >= 0)

    def test_point_validation(self):
        with pytest.raises(ValueError):
            RooflinePoint("x", -1.0, 5.0)


class TestTimeModel:
    def _model(self, mode="jacobian"):
        from repro.kokkos.policy import LaunchBounds

        th = theoretical_minimum(f"optimized-{mode}", 256_000)
        m = TimeOrientedModel(kernel=mode, theoretical=th, peak_bandwidth=A100.hbm_bytes_per_s)
        for spec in (A100, MI250X_GCD):
            sim = GPUSimulator(spec)
            # the paper's optimized MI250X numbers use the tuned bounds
            tuned = LaunchBounds(128, 2) if spec.vendor == "amd" else None
            m.add_profile(sim.run(f"baseline-{mode}"))
            m.add_profile(sim.run(f"optimized-{mode}", launch_bounds=tuned))
        return m

    def test_points_respect_bounds(self):
        m = self._model()
        m.validate()  # raises if any point beats a bound

    def test_achievable_corner(self):
        m = self._model()
        b, t = m.achievable_point
        assert b == m.application_wall_bytes
        assert t == pytest.approx(b / A100.hbm_bytes_per_s)

    def test_optimized_closer_to_wall(self):
        """Fig. 5: optimization moves points toward the application bound."""
        m = self._model()
        base = [p for p in m.points if "baseline" in p.label]
        opt = [p for p in m.points if "optimized" in p.label]
        for bp, op in zip(base, opt):
            assert op.bytes_moved < bp.bytes_moved
            assert op.time_s < bp.time_s
            assert m.efficiency_data_movement(op) > m.efficiency_data_movement(bp)
            assert m.efficiency_time(op) > m.efficiency_time(bp)

    def test_efficiencies_in_unit_interval(self):
        m = self._model("residual")
        for p in m.points:
            assert 0.0 < m.efficiency_time(p) <= 1.0 + 1e-9
            assert 0.0 < m.efficiency_data_movement(p) <= 1.0 + 1e-9

    def test_series_brackets_points(self):
        m = self._model()
        xs, ts, wall = m.series()
        assert xs.min() <= wall <= xs.max()
        assert np.all(np.diff(ts) > 0)

    def test_invalid_point(self):
        from repro.perf.time_model import TimeOrientedPoint

        with pytest.raises(ValueError):
            TimeOrientedPoint("x", "A100", -1.0, 1.0)


class TestPortability:
    def test_harmonic_mean(self):
        assert performance_portability([0.5, 0.5]) == pytest.approx(0.5)
        assert performance_portability([1.0, 0.5]) == pytest.approx(2 / 3)

    def test_unsupported_platform_zeroes(self):
        assert performance_portability([0.9, None]) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            performance_portability([])
        with pytest.raises(ValueError):
            performance_portability([0.5, -0.1])

    @given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_phi_bounded_by_min_max(self, effs):
        phi = performance_portability(effs)
        assert min(effs) - 1e-12 <= phi <= max(effs) + 1e-12

    @given(st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_phi_of_identical_is_identity(self, e):
        assert performance_portability([e, e, e]) == pytest.approx(e)

    def test_efficiency_helpers(self):
        assert efficiency_time(1.0, 2.0) == 0.5
        assert efficiency_data_movement(3.0, 6.0) == 0.5
        with pytest.raises(ValueError):
            efficiency_time(0.0, 1.0)
        with pytest.raises(ValueError):
            efficiency_data_movement(1.0, 0.0)

    def test_portability_table(self):
        rows = [
            {
                "implementation": "Baseline",
                "efficiency": "e_time",
                "kernel": "Jacobian",
                "per_platform": {"A100": 0.39, "MI250X-GCD": 0.38},
            }
        ]
        out = portability_table(rows)
        assert out[0].phi == pytest.approx(2 / (1 / 0.39 + 1 / 0.38))


class TestReport:
    def test_format_table(self):
        s = format_table(["a", "bb"], [[1, 2.5], ["x", 3.0e-7]], title="T")
        assert "T" in s and "bb" in s and "3.00e-07" in s

    def test_format_table_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_ascii_scatter_renders(self):
        s = ascii_scatter(
            [(1.0, 1.0, "B"), (10.0, 0.1, "O")],
            lines=[(0.1, 0.01, 100.0, 10.0, ".")],
            xlabel="GB",
            ylabel="ms",
        )
        assert "B" in s and "O" in s and "GB" in s

    def test_ascii_scatter_empty(self):
        with pytest.raises(ValueError):
            ascii_scatter([])

    def test_write_csv(self, tmp_path):
        p = write_csv(tmp_path / "sub" / "t.csv", ["a", "b"], [[1, 2], [3, 4]])
        assert p.exists()
        assert p.read_text().splitlines()[0] == "a,b"
