"""perfdiff: document loading, self-time attribution, ranking, CLI."""

from __future__ import annotations

import json

import pytest

from repro.observability.perfdiff import (
    DEFAULT_MIN_DELTA_S,
    SNAPSHOT_KIND,
    diff_documents,
    format_diff,
    load_perf_document,
    main,
)


def _snapshot(path, spans, counters=None, label=None):
    doc = {
        "kind": SNAPSHOT_KIND,
        "schema_version": 1,
        "spans": spans,
        "counters": counters or {},
    }
    if label:
        doc["label"] = label
    path.write_text(json.dumps(doc))
    return str(path)


class TestLoadPerfDocument:
    def test_snapshot_format(self, tmp_path):
        p = _snapshot(
            tmp_path / "s.json",
            {"gmres.cycle": {"count": 8, "total_s": 2.0, "self_s": 0.5}},
            counters={"gmres": {"iterations": 292}},
        )
        doc = load_perf_document(p)
        assert doc["spans"]["gmres.cycle"] == {"count": 8, "total_s": 2.0, "self_s": 0.5}
        assert doc["counters"] == {"gmres.iterations": 292.0}

    def test_snapshot_without_self_falls_back_to_total(self, tmp_path):
        p = _snapshot(tmp_path / "s.json", {"a": {"count": 1, "total_s": 3.0}})
        doc = load_perf_document(p)
        assert doc["spans"]["a"]["self_s"] == 3.0

    def test_chrome_trace_reconstructs_self_time(self, tmp_path):
        # parent 0-100us wholly contains child 20-60us on the same lane:
        # parent self = 60us, child self = 40us
        trace = {
            "traceEvents": [
                {"name": "parent", "ph": "X", "ts": 0, "dur": 100, "pid": 0, "tid": 0},
                {"name": "child", "ph": "X", "ts": 20, "dur": 40, "pid": 0, "tid": 0},
                {"name": "other", "ph": "X", "ts": 0, "dur": 100, "pid": 1, "tid": 0},
                {"name": "meta", "ph": "M", "pid": 0, "tid": 0},
            ],
            "otherData": {"metrics": {"counters": {"c": 3}}},
        }
        p = tmp_path / "t.json"
        p.write_text(json.dumps(trace))
        doc = load_perf_document(str(p))
        assert doc["spans"]["parent"]["self_s"] == pytest.approx(60e-6)
        assert doc["spans"]["child"]["self_s"] == pytest.approx(40e-6)
        # separate pid lane: no containment across processes
        assert doc["spans"]["other"]["self_s"] == pytest.approx(100e-6)
        assert doc["counters"] == {"c": 3.0}

    def test_bench_document(self, tmp_path):
        doc = {
            "bench": "solver_hotpath",
            "spans": {"newton.step": {"count": 8, "total_s": 1.0, "self_s": 0.2}},
            "deterministic": {"gmres": {"assembled": {"stream_bytes": 5.0}}},
        }
        p = tmp_path / "b.json"
        p.write_text(json.dumps(doc))
        loaded = load_perf_document(str(p))
        assert loaded["spans"]["newton.step"]["self_s"] == 0.2
        assert loaded["counters"]["deterministic.gmres.assembled.stream_bytes"] == 5.0

    def test_unrecognized_document_raises(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"something": "else"}))
        with pytest.raises(ValueError):
            load_perf_document(str(p))


class TestDiffDocuments:
    def _docs(self):
        base = {
            "label": "base",
            "spans": {
                "gmres.iteration": {"count": 100, "total_s": 1.0, "self_s": 0.4},
                "newton.step": {"count": 8, "total_s": 2.0, "self_s": 0.1},
                "steady": {"count": 1, "total_s": 0.5, "self_s": 0.5},
            },
            "counters": {"gmres.iterations": 100.0},
        }
        cur = {
            "label": "cur",
            "spans": {
                # planted: self time quadruples; ancestors inflate too
                "gmres.iteration": {"count": 100, "total_s": 2.3, "self_s": 1.7},
                "newton.step": {"count": 8, "total_s": 3.3, "self_s": 0.1},
                "steady": {"count": 1, "total_s": 0.5, "self_s": 0.5},
            },
            "counters": {"gmres.iterations": 120.0},
        }
        return base, cur

    def test_planted_span_ranks_first_despite_ancestor_inflation(self):
        base, cur = self._docs()
        report = diff_documents(base, cur)
        assert report["top_regression"] == "gmres.iteration"
        assert report["spans"][0]["name"] == "gmres.iteration"
        assert report["spans"][0]["delta_s"] == pytest.approx(1.3)
        # ancestor's inclusive delta is visible but does not outrank it
        assert report["spans"][0]["incl_delta_s"] == pytest.approx(1.3)

    def test_share_and_totals(self):
        base, cur = self._docs()
        report = diff_documents(base, cur)
        assert report["base_total_s"] == pytest.approx(1.0)
        assert report["cur_total_s"] == pytest.approx(2.3)
        assert report["total_delta_s"] == pytest.approx(1.3)
        assert report["spans"][0]["share"] == pytest.approx(1.0)

    def test_min_delta_filters_noise(self):
        base, cur = self._docs()
        cur["spans"]["steady"]["self_s"] += DEFAULT_MIN_DELTA_S / 10
        report = diff_documents(base, cur)
        assert all(r["name"] != "steady" for r in report["spans"])

    def test_new_and_vanished_spans(self):
        base = {"label": "b", "spans": {}, "counters": {}}
        cur = {
            "label": "c",
            "spans": {"fresh": {"count": 1, "total_s": 0.2, "self_s": 0.2}},
            "counters": {},
        }
        report = diff_documents(base, cur)
        (row,) = report["spans"]
        assert row["name"] == "fresh" and row["ratio"] == float("inf")

    def test_counter_rows(self):
        base, cur = self._docs()
        report = diff_documents(base, cur)
        (row,) = report["counters"]
        assert row["name"] == "gmres.iterations" and row["delta"] == pytest.approx(20.0)

    def test_no_regression_top_is_none(self):
        base, cur = self._docs()
        report = diff_documents(cur, base)  # reversed: everything improves
        assert report["top_regression"] is None


class TestCli:
    def test_main_prints_attribution_table(self, tmp_path, capsys):
        a = _snapshot(tmp_path / "a.json", {"slow": {"count": 1, "total_s": 1.0, "self_s": 1.0}})
        b = _snapshot(tmp_path / "b.json", {"slow": {"count": 1, "total_s": 2.0, "self_s": 2.0}})
        assert main([a, b]) == 0
        out = capsys.readouterr().out
        assert "top regression: slow" in out
        assert "Span attribution by self time" in out

    def test_main_json_report(self, tmp_path, capsys):
        a = _snapshot(tmp_path / "a.json", {"s": {"count": 1, "total_s": 1.0, "self_s": 1.0}})
        b = _snapshot(tmp_path / "b.json", {"s": {"count": 1, "total_s": 3.0, "self_s": 3.0}})
        out_json = tmp_path / "report.json"
        assert main([a, b, "--json", str(out_json)]) == 0
        report = json.loads(out_json.read_text())
        assert report["top_regression"] == "s"

    def test_main_bad_input_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        ok = _snapshot(tmp_path / "ok.json", {})
        assert main([missing, ok]) == 2
        assert "perfdiff:" in capsys.readouterr().err

    def test_format_diff_handles_empty(self):
        report = diff_documents(
            {"label": "a", "spans": {}, "counters": {}},
            {"label": "b", "spans": {}, "counters": {}},
        )
        text = format_diff(report)
        assert "no span deltas" in text
