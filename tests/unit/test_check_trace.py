"""tools/check_trace.py attribution-era rules (stdlib trace validator)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parents[2] / "tools"


@pytest.fixture(scope="module")
def check_trace():
    sys.path.insert(0, str(TOOLS))
    try:
        from check_trace import check_trace as fn
    finally:
        sys.path.pop(0)
    return fn


def _base_events():
    """Minimal passing trace: solve structure + one kernel span."""
    return [
        {"name": "velocity.solve", "cat": "phase", "ph": "X", "ts": 0, "dur": 100,
         "pid": 0, "tid": 0, "args": {}},
        {"name": "newton.step", "cat": "phase", "ph": "X", "ts": 1, "dur": 50,
         "pid": 0, "tid": 0, "args": {}},
        {"name": "kern", "cat": "kernel", "ph": "X", "ts": 2, "dur": 10,
         "pid": 0, "tid": 0, "args": {}},
    ]


def _write(tmp_path, events):
    p = tmp_path / "trace.json"
    p.write_text(json.dumps({"traceEvents": events}))
    return str(p)


def _roofline(**overrides):
    r = {"bytes": 100.0, "flops": 10.0, "ai": 0.1, "roof_frac": 0.5,
         "bw_frac": 0.5, "basis": "modeled", "gpu": "MI250X-GCD"}
    r.update(overrides)
    return r


class TestBaseline:
    def test_minimal_trace_passes(self, check_trace, tmp_path):
        assert check_trace(_write(tmp_path, _base_events())) == []


class TestRooflineRules:
    def test_valid_annotation_passes(self, check_trace, tmp_path):
        ev = _base_events()
        ev[2]["args"]["roofline"] = _roofline()
        assert check_trace(_write(tmp_path, ev)) == []

    @pytest.mark.parametrize("bad", [
        {"bytes": -1.0}, {"flops": float("nan")}, {"ai": None},
        {"roof_frac": "x"}, {"basis": "guessed"},
    ])
    def test_bad_field_rejected(self, check_trace, tmp_path, bad):
        ev = _base_events()
        ev[2]["args"]["roofline"] = _roofline(**bad)
        errors = check_trace(_write(tmp_path, ev))
        assert errors and any("roofline" in e for e in errors)

    def test_missing_field_rejected(self, check_trace, tmp_path):
        ev = _base_events()
        r = _roofline()
        del r["bw_frac"]
        ev[2]["args"]["roofline"] = r
        assert any("bw_frac" in e for e in check_trace(_write(tmp_path, ev)))


class TestRankPidRule:
    def test_stitched_rank_on_matching_pid_passes(self, check_trace, tmp_path):
        ev = _base_events()
        ev.append({"name": "rank.spmv", "cat": "compute", "ph": "X", "ts": 5,
                   "dur": 2, "pid": 1, "tid": 0, "args": {"rank": 1}})
        assert check_trace(_write(tmp_path, ev)) == []

    def test_unstitched_rank_span_rejected(self, check_trace, tmp_path):
        ev = _base_events()
        ev.append({"name": "rank.spmv", "cat": "compute", "ph": "X", "ts": 5,
                   "dur": 2, "pid": 0, "tid": 0, "args": {"rank": 3}})
        errors = check_trace(_write(tmp_path, ev))
        assert any("rank to pid" in e for e in errors)


class TestCounterRules:
    def test_valid_counter_passes(self, check_trace, tmp_path):
        ev = _base_events()
        ev.append({"name": "newton.residual", "ph": "C", "ts": 3, "pid": 0,
                   "tid": 0, "args": {"value": 1.5}})
        assert check_trace(_write(tmp_path, ev)) == []

    @pytest.mark.parametrize("args", [{}, {"value": "oops"}, {"value": float("inf")},
                                      {"value": True}])
    def test_bad_counter_args_rejected(self, check_trace, tmp_path, args):
        ev = _base_events()
        ev.append({"name": "bad", "ph": "C", "ts": 3, "pid": 0, "tid": 0,
                   "args": args})
        assert check_trace(_write(tmp_path, ev))

    def test_negative_counter_ts_rejected(self, check_trace, tmp_path):
        ev = _base_events()
        ev.append({"name": "bad", "ph": "C", "ts": -1, "pid": 0, "tid": 0,
                   "args": {"value": 1.0}})
        assert any("bad ts" in e for e in check_trace(_write(tmp_path, ev)))
