"""Tests for the calibration tools (tools/calibrate.py, tools/search_params.py)."""

import math
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
if str(REPO_ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "tools"))

import calibrate  # noqa: E402
import search_params  # noqa: E402


class TestCalibrate:
    def test_table3_prints_speedups(self, capsys):
        calibrate.table3()
        out = capsys.readouterr().out
        assert "Table III" in out
        assert out.count("speedup=") == 4  # 2 GPUs x 2 modes

    def test_table4_prints_efficiencies(self, capsys):
        calibrate.table4()
        out = capsys.readouterr().out
        assert "e_time" in out and "e_DM" in out
        assert out.count("paper") >= 4

    def test_table2_prints_launch_sweep(self, capsys):
        calibrate.table2()
        out = capsys.readouterr().out
        assert "LaunchBounds" in out
        assert "vgpr=" in out

    @pytest.mark.parametrize("table", ["2", "3", "4"])
    def test_main_single_table(self, table, capsys):
        assert calibrate.main(["--table", table]) == 0
        out = capsys.readouterr().out
        assert f"Table {'II' * (table == '2') or 'III' * (table == '3') or 'IV'}" in out

    def test_main_rejects_unknown_table(self, capsys):
        with pytest.raises(SystemExit) as exc:
            calibrate.main(["--table", "5"])
        assert exc.value.code == 2


class TestSearchParams:
    def test_evaluate_default_specs_finite(self):
        from repro.gpusim.specs import A100, MI250X_GCD

        err, out = search_params.evaluate(A100, MI250X_GCD)
        assert math.isfinite(err) and err >= 0.0
        assert all(math.isfinite(v) for v in out.values())
        # the shipped specs ARE the search winner: nothing should be
        # hitting the bad-point penalty
        assert err < search_params.BAD_POINT_PENALTY

    def test_score_penalizes_degenerate_ratios(self):
        """A zero/negative/non-finite metric is penalized, not a ValueError."""
        clean = {k: t for k, (t, _w) in search_params.TARGETS.items()}
        assert search_params.score(clean) == 0.0  # log(t/t) == 0 everywhere
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            poisoned = dict(clean, A_jacobian_speedup=bad)
            err = search_params.score(poisoned)
            # weight of A_jacobian_speedup is 3.0
            assert err == 3.0 * search_params.BAD_POINT_PENALTY

    def test_score_missing_metric_raises_keyerror(self):
        clean = {k: t for k, (t, _w) in search_params.TARGETS.items()}
        del clean["t2_residual"]
        with pytest.raises(KeyError):
            search_params.score(clean)

    def test_build_grids_quick_collapses(self):
        grid_a, grid_m = search_params.build_grids(quick=True)
        assert all(len(v) == 1 for v in grid_a.values())
        assert all(len(v) == 1 for v in grid_m.values())
        full_a, full_m = search_params.build_grids()
        assert all(len(v) > 1 for v in full_a.values())
        assert set(full_a) == set(grid_a) and set(full_m) == set(grid_m)

    def test_search_limit_stops_early(self):
        grid_a, grid_m = search_params.build_grids()
        calls = []

        def fake_evaluate(a100, mi):
            calls.append((a100, mi))
            return float(len(calls)), {"metric": 1.0}

        orig = search_params.evaluate
        search_params.evaluate = fake_evaluate
        try:
            best = search_params.search(grid_a, grid_m, limit=3, progress=lambda *_: None)
        finally:
            search_params.evaluate = orig
        assert len(calls) == 3
        assert best[0] == 1.0  # first (lowest) fake error wins

    def test_main_quick_mode(self, capsys):
        assert search_params.main(["--quick"]) == 0
        out = capsys.readouterr().out
        assert "1 combos" in out
        assert "best err" in out
        assert "A100:" in out and "MI:" in out

    def test_main_rejects_nonpositive_limit(self):
        with pytest.raises(SystemExit) as exc:
            search_params.main(["--quick", "--limit", "0"])
        assert exc.value.code == 2
