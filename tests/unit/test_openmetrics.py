"""OpenMetrics exposition: rendering, grammar validation, round-trips."""

from __future__ import annotations

import pytest

from repro.observability.metrics import MetricsRegistry
from repro.observability.openmetrics import (
    parse_exposition,
    render,
    sanitize_name,
    write_openmetrics,
)
from repro.observability.timeseries import SeriesRegistry


def _snapshot():
    m = MetricsRegistry()
    m.counter("newton.steps").inc(8)
    m.counter("gmres.iterations").inc(292)
    m.gauge("tuner.best_cost").set(1.5e9)
    h = m.histogram("gmres.iterations_per_solve")
    for v in (15, 43, 48):
        h.observe(v)
    return m.snapshot()


def _series():
    reg = SeriesRegistry()
    reg.record("newton.residual", 10.0)
    reg.record("newton.residual", 0.5)
    reg.record("gmres.residual", 3.0, mode="assembled")
    return reg


class TestSanitizeName:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_name("newton.residual") == "newton_residual"
        assert sanitize_name("MI250X-GCD") == "MI250X_GCD"

    def test_leading_digit_guarded(self):
        assert sanitize_name("3dmesh")[0] not in "0123456789"


class TestRender:
    def test_counters_get_total_suffix_and_type(self):
        text = render(_snapshot(), None)
        assert "# TYPE newton_steps counter" in text
        assert "newton_steps_total 8" in text
        assert text.endswith("# EOF\n")

    def test_histogram_as_summary_with_quantiles(self):
        text = render(_snapshot(), None)
        assert "# TYPE gmres_iterations_per_solve summary" in text
        assert 'quantile="0.5"' in text and 'quantile="0.95"' in text
        assert "gmres_iterations_per_solve_count 3" in text

    def test_series_samples_carry_labels_and_timestamps(self):
        text = render(None, _series())
        assert 'mode="assembled"' in text
        # every series sample line ends with a unix timestamp
        lines = [
            ln for ln in text.splitlines()
            if ln.startswith("gmres_residual{") or ln.startswith("newton_residual{")
        ]
        assert lines
        for ln in lines:
            assert float(ln.split()[-1]) > 1e9

    def test_stdlib_parser_accepts_own_output(self):
        families = parse_exposition(render(_snapshot(), _series()))
        assert families["newton_steps"]["type"] == "counter"
        assert families["gmres_iterations_per_solve"]["type"] == "summary"
        assert families["newton_residual"]["type"] == "gauge"
        # both kept points of the residual series survive as samples
        assert len(families["newton_residual"]["samples"]) == 2

    def test_empty_exposition_is_just_eof(self):
        assert parse_exposition(render(None, None)) == {}


class TestParserRejectsBadExpositions:
    def test_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_exposition("# TYPE x counter\nx_total 1\n")

    def test_counter_sample_without_total_suffix(self):
        bad = "# TYPE x counter\nx 1\n# EOF\n"
        with pytest.raises(ValueError):
            parse_exposition(bad)

    def test_duplicate_type_declaration(self):
        bad = "# TYPE x gauge\nx 1\n# TYPE x gauge\nx 2\n# EOF\n"
        with pytest.raises(ValueError):
            parse_exposition(bad)

    def test_duplicate_sample_same_labelset(self):
        bad = "# TYPE x gauge\nx 1\nx 2\n# EOF\n"
        with pytest.raises(ValueError):
            parse_exposition(bad)

    def test_non_numeric_value(self):
        bad = "# TYPE x gauge\nx banana\n# EOF\n"
        with pytest.raises(ValueError):
            parse_exposition(bad)


class TestWriteOpenmetrics:
    def test_file_round_trip(self, tmp_path):
        path = write_openmetrics(tmp_path / "m.om", _snapshot(), _series())
        families = parse_exposition(path.read_text())
        assert "newton_steps" in families and "gmres_residual" in families


class TestSeriesFamilies:
    def test_one_type_line_per_family_across_labelsets(self):
        # one registry NAME can hold many TimeSeries (one per labelset);
        # render must emit exactly one TYPE line per family or the
        # validator rejects its own output (the serve --check regression)
        reg = SeriesRegistry()
        reg.record("gmres.residual", 3.0, mode="assembled")
        reg.record("gmres.residual", 2.0, mode="matrix_free")
        reg.record("gmres.residual", 1.0, mode="assembled")
        text = render(None, reg)
        assert text.count("# TYPE gmres_residual gauge") == 1
        families = parse_exposition(text)
        assert len(families["gmres_residual"]["samples"]) == 3

    def test_series_name_clashing_with_counter_gets_suffixed(self):
        m = MetricsRegistry()
        m.counter("solve.count").inc(2)
        reg = SeriesRegistry()
        reg.record("solve.count", 1.0, phase="warm")
        text = render(m.snapshot(), reg)
        families = parse_exposition(text)
        assert families["solve_count"]["type"] == "counter"
        assert "solve_count_series" in families

    def test_series_merging_into_typed_gauge_family(self):
        m = MetricsRegistry()
        m.gauge("queue.depth").set(4)
        reg = SeriesRegistry()
        reg.record("queue.depth", 3.0, worker="w1")
        text = render(m.snapshot(), reg)
        assert text.count("# TYPE queue_depth gauge") == 1
        families = parse_exposition(text)
        # the plain gauge sample and the labelled series samples coexist
        assert len(families["queue_depth"]["samples"]) == 2
