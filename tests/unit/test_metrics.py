"""Tests for the alternative portability efficiencies (related work)."""

import pytest

from repro.gpusim import A100, MI250X_GCD, GPUSimulator, ProblemSize
from repro.perf import (
    architectural_efficiency,
    application_efficiency,
    ai_fraction,
    theoretical_minimum,
    performance_portability,
)

PROB = ProblemSize(64_000)


@pytest.fixture(scope="module")
def profiles():
    out = {}
    for spec in (A100, MI250X_GCD):
        sim = GPUSimulator(spec)
        for impl in ("baseline", "optimized"):
            out[(impl, spec.name)] = sim.run(f"{impl}-jacobian", PROB)
    return out


class TestArchitecturalEfficiency:
    def test_bounded(self, profiles):
        for (impl, gpu), p in profiles.items():
            spec = A100 if gpu == "A100" else MI250X_GCD
            e = architectural_efficiency(spec, p)
            assert 0.0 < e <= 1.0

    def test_optimization_improves(self, profiles):
        for gpu, spec in (("A100", A100), ("MI250X-GCD", MI250X_GCD)):
            b = architectural_efficiency(spec, profiles[("baseline", gpu)])
            o = architectural_efficiency(spec, profiles[("optimized", gpu)])
            assert o > b


class TestApplicationEfficiency:
    def test_best_is_one(self, profiles):
        p = profiles[("optimized", "A100")]
        assert application_efficiency(p, p.time_s) == pytest.approx(1.0)

    def test_baseline_below_one(self, profiles):
        b = profiles[("baseline", "A100")]
        o = profiles[("optimized", "A100")]
        e = application_efficiency(b, o.time_s)
        assert 0.0 < e < 0.6  # ~1/speedup

    def test_validation(self, profiles):
        with pytest.raises(ValueError):
            application_efficiency(profiles[("baseline", "A100")], 0.0)


class TestAiFraction:
    def test_equals_edm(self, profiles):
        """For fixed flops, AI fraction is exactly e_DM."""
        th = theoretical_minimum("optimized-jacobian", PROB.num_cells)
        p = profiles[("baseline", "A100")]
        assert ai_fraction(p, th) == pytest.approx(min(1.0, th.total_bytes / p.hbm_bytes))

    def test_optimized_near_one(self, profiles):
        th = theoretical_minimum("optimized-jacobian", PROB.num_cells)
        assert ai_fraction(profiles[("optimized", "A100")], th) > 0.8


class TestCrossMetricConsistency:
    def test_all_metrics_agree_on_the_winner(self, profiles):
        """Whatever the efficiency definition, the optimized kernel wins Phi."""
        th = theoretical_minimum("optimized-jacobian", PROB.num_cells)
        for metric in ("arch", "app", "ai"):
            phis = {}
            for impl in ("baseline", "optimized"):
                effs = []
                for gpu, spec in (("A100", A100), ("MI250X-GCD", MI250X_GCD)):
                    p = profiles[(impl, gpu)]
                    if metric == "arch":
                        effs.append(architectural_efficiency(spec, p))
                    elif metric == "app":
                        best = profiles[("optimized", gpu)].time_s
                        effs.append(application_efficiency(p, best))
                    else:
                        effs.append(ai_fraction(p, th))
                phis[impl] = performance_portability(effs)
            assert phis["optimized"] > phis["baseline"], metric
