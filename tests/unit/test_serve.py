"""Unit tests for the solve service stack (repro.serve).

Service tests swap the artifact-cache builder for a stub problem so
they exercise the SERVICE semantics -- dedup, breaker, degradation
ladder, retry, timeout, worker kill + checkpoint resume -- in
milliseconds, without building a single mesh.  The stub honours the
same solve() contract the real problem exposes (checkpoint_cb,
resume_from, deadline, preconditioner), which is exactly the seam the
service depends on.
"""

import asyncio
import json
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.observability import parse_exposition
from repro.resilience import SolveTimeout
from repro.resilience.policies import RecoveryPolicy
from repro.serve import (
    ArtifactCache,
    CircuitBreaker,
    Job,
    KillSwitch,
    SolveRequest,
    SolveResponse,
    SolveScenario,
    SolveService,
    WorkerKilled,
    WorkerPool,
)
from repro.serve.http import serve_http


# ----------------------------------------------------------------------
# stub problem honouring the real solve() seam
# ----------------------------------------------------------------------

class Behavior:
    """Scripted behaviour for one stub problem."""

    def __init__(self, fail_times: int = 0, block: threading.Event | None = None,
                 steps: int = 3):
        self.fail_remaining = fail_times
        self.block = block
        self.steps = steps


class FakeProblem:
    def __init__(self, scenario: SolveScenario, behavior: Behavior | None):
        self.scenario = scenario
        self.behavior = behavior or Behavior()
        self.calls: list[dict] = []

    def solve(self, checkpoint_every=None, checkpoint_cb=None, resume_from=None,
              deadline=None, preconditioner=None, **_kw):
        b = self.behavior
        self.calls.append({
            "resume_from": resume_from,
            "preconditioner": preconditioner,
        })
        if b.block is not None:
            assert b.block.wait(timeout=10.0), "test forgot to release the block"
        if b.fail_remaining > 0:
            b.fail_remaining -= 1
            raise RuntimeError("scripted transient failure")
        start = resume_from.step if resume_from is not None else 0
        for step in range(start, b.steps):
            if deadline is not None:
                deadline.check(f"fake.step {step}")
            if checkpoint_cb is not None:
                checkpoint_cb(SimpleNamespace(step=step + 1))
        return SimpleNamespace(
            u=np.arange(4.0) + b.steps,
            mean_velocity=1.0,
            newton=SimpleNamespace(iterations=b.steps),
            preconditioner=preconditioner,
        )


def make_cache(behaviors: dict | None = None):
    """ArtifactCache over stub problems; returns (cache, problems-by-name)."""
    problems: dict[str, FakeProblem] = {}

    def builder(scenario: SolveScenario):
        problem = FakeProblem(scenario, (behaviors or {}).get(scenario.name))
        problems[scenario.name] = problem
        return SimpleNamespace(problem=problem)

    return ArtifactCache(builder=builder), problems


def scenario(name: str, **kw) -> SolveScenario:
    return SolveScenario(name=name, **kw)


# ----------------------------------------------------------------------
# request/response types
# ----------------------------------------------------------------------

class TestRequests:
    def test_digest_ignores_name(self):
        a = scenario("a", resolution_km=500.0)
        b = scenario("b", resolution_km=500.0)
        c = scenario("a", resolution_km=501.0)
        assert a.digest == b.digest
        assert a.digest != c.digest

    def test_coarsened(self):
        s = scenario("s", resolution_km=500.0, num_layers=8)
        coarse = s.coarsened()
        assert coarse.name == "s~coarse"
        assert coarse.resolution_km == 1000.0
        assert coarse.num_layers == 4
        assert coarse.digest != s.digest

    def test_validation(self):
        with pytest.raises(ValueError):
            scenario("bad", preconditioner="nonsense")
        with pytest.raises(ValueError):
            scenario("bad", num_layers=0)
        with pytest.raises(ValueError):
            SolveResponse(request=SolveRequest(scenario("x")), status="weird")


# ----------------------------------------------------------------------
# circuit breaker state machine
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def test_success_resets_failure_streak(self):
        br = CircuitBreaker("s", failure_threshold=3)
        br.record_failure()
        br.record_failure()
        br.record_success()
        br.record_failure()
        br.record_failure()
        assert br.state == "closed"
        assert br.allow()

    def test_trips_open_at_threshold(self):
        br = CircuitBreaker("s", failure_threshold=2)
        br.record_failure()
        assert br.state == "closed"
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()

    def test_probe_schedule_arming_request_is_still_shed(self):
        br = CircuitBreaker("s", failure_threshold=1, probe_after=2)
        br.record_failure()
        assert br.state == "open"
        assert not br.allow()          # shed 1
        assert not br.allow()          # shed 2: arms half-open, still shed
        assert br.state == "half_open"
        assert br.allow()              # the single probe
        assert not br.allow()          # concurrent request during probe: shed
        br.record_success()
        assert br.state == "closed"
        assert br.allow()

    def test_probe_failure_reopens_and_resets_shed_count(self):
        br = CircuitBreaker("s", failure_threshold=1, probe_after=2)
        br.record_failure()
        br.allow(); br.allow()         # arm
        assert br.allow()              # probe
        br.record_failure("still broken")
        assert br.state == "open"
        assert not br.allow()          # shed count restarted: not armed yet
        assert br.state == "open"
        assert not br.allow()
        assert br.state == "half_open"

    def test_transition_record(self):
        br = CircuitBreaker("s", failure_threshold=1, probe_after=1)
        br.record_failure()
        br.allow()                     # arms half-open (shed)
        br.allow()                     # probe
        br.record_success()
        walk = [(t["from"], t["to"]) for t in br.transitions]
        assert walk == [("closed", "open"), ("open", "half_open"),
                        ("half_open", "closed")]


# ----------------------------------------------------------------------
# kill switch + worker pool
# ----------------------------------------------------------------------

class TestKillSwitch:
    def test_fires_once_on_first_life_only(self):
        ks = KillSwitch()
        ks.arm("d1", 2)
        ks.check("d1", 1, resumes=0)             # wrong step: no fire
        ks.check("d1", 2, resumes=1)             # revived job: no fire
        with pytest.raises(WorkerKilled):
            ks.check("d1", 2, resumes=0)
        assert ks.fired == [("d1", 2)]
        ks.check("d1", 2, resumes=0)             # disarmed after firing


class TestWorkerPool:
    def test_reap_revives_dead_worker_and_resumes_job(self):
        pool = WorkerPool(workers=1)
        done = threading.Event()
        results = []

        def execute(job):
            if job.resumes == 0:
                job.beat(SimpleNamespace(step=2))
                raise WorkerKilled("bang")
            return ("resumed-from", job.checkpoint.step)

        def on_done(job, outcome):
            results.append(outcome)
            done.set()

        pool.submit(Job(execute, on_done))
        limit = time.monotonic() + 5.0
        while not done.is_set() and time.monotonic() < limit:
            pool.reap()
            time.sleep(0.002)
        assert done.is_set()
        assert results == [("resumed-from", 2)]
        assert pool.deaths == 1
        assert len(pool.workers) == 1
        pool.shutdown()

    def test_resize_shrinks_without_counting_deaths(self):
        pool = WorkerPool(workers=3)
        pool.resize(1)
        limit = time.monotonic() + 5.0
        while len(pool.workers) > 1 and time.monotonic() < limit:
            pool.reap()
            time.sleep(0.002)
        assert len(pool.workers) == 1
        assert pool.deaths == 0
        pool.shutdown()


# ----------------------------------------------------------------------
# artifact cache
# ----------------------------------------------------------------------

class TestArtifactCache:
    def test_hit_miss_and_reuse(self):
        cache, problems = make_cache()
        s = scenario("a")
        e1 = cache.get(s)
        e2 = cache.get(s)
        assert e1 is e2
        assert e2.hits == 1
        assert len(problems) == 1
        assert cache.peek(scenario("other", num_layers=7)) is None
        assert len(problems) == 1  # peek never builds

    def test_evicts_coldest(self):
        cache, _ = make_cache()
        cache.max_entries = 2
        a, b, c = scenario("a"), scenario("b", num_layers=4), scenario("c", num_layers=5)
        cache.get(a)
        cache.get(b)
        cache.get(a)          # a is now warmer than b
        cache.get(c)          # evicts b
        assert cache.peek(a) is not None
        assert cache.peek(b) is None
        assert cache.peek(c) is not None

    def test_remember_good_feeds_cached_result(self):
        cache, _ = make_cache()
        s = scenario("a")
        assert cache.cached_result(s) is None
        cache.get(s)
        token = object()
        cache.remember_good(s, token)
        assert cache.cached_result(s) is token


# ----------------------------------------------------------------------
# the service itself
# ----------------------------------------------------------------------

def run(coro):
    return asyncio.run(coro)


def make_service(behaviors=None, **kw):
    cache, problems = make_cache(behaviors)
    kw.setdefault("policy", RecoveryPolicy(max_retries=1, backoff_s=0.0))
    service = SolveService(cache=cache, **kw)
    return service, problems


class TestSolveService:
    def test_ok_response(self):
        async def body():
            service, problems = make_service()
            async with service:
                resp = await service.submit(SolveRequest(scenario("a")))
            assert resp.status == "ok"
            assert resp.attempts == 1
            assert resp.resumes == 0
            assert not resp.deduped
            assert resp.result is not None
            assert resp.completed
            # success recorded as the cached-result rung's last good
            assert service.cache.cached_result(scenario("a")) is resp.result
            assert problems["a"].calls[0]["preconditioner"] is None
        run(body())

    def test_retry_then_ok(self):
        async def body():
            service, problems = make_service({"a": Behavior(fail_times=1)})
            async with service:
                resp = await service.submit(SolveRequest(scenario("a")))
            assert resp.status == "ok"
            assert resp.attempts == 2
            assert len(problems["a"].calls) == 2
        run(body())

    def test_failed_after_retry_budget(self):
        async def body():
            service, _ = make_service(
                {"a": Behavior(fail_times=10)},
                policy=RecoveryPolicy(max_retries=2, backoff_s=0.0),
            )
            async with service:
                resp = await service.submit(SolveRequest(scenario("a")))
            assert resp.status == "failed"
            assert resp.attempts == 3
            assert "scripted transient failure" in resp.reason
        run(body())

    def test_deadline_expiry_is_typed_timeout_without_partial(self):
        async def body():
            service, _ = make_service()
            async with service:
                resp = await service.submit(
                    SolveRequest(scenario("a"), deadline_s=0.0)
                )
            # budget spent before the first step: typed timeout, no
            # partial garbage, and no retry (retrying cannot help)
            assert resp.status == "timeout"
            assert resp.partial is None
            assert resp.attempts == 1
            assert "deadline" in resp.reason
        run(body())

    def test_identical_concurrent_requests_dedup_to_one_solve(self):
        async def body():
            gate = threading.Event()
            service, problems = make_service({"a": Behavior(block=gate)})
            async with service:
                first = asyncio.create_task(
                    service.submit(SolveRequest(scenario("a")))
                )
                await asyncio.sleep(0.05)  # let it register in flight
                second = asyncio.create_task(
                    service.submit(SolveRequest(scenario("same numbers")))
                )
                await asyncio.sleep(0.05)
                gate.set()
                r1, r2 = await asyncio.gather(first, second)
            assert r1.status == "ok" and r2.status == "ok"
            assert not r1.deduped and r2.deduped
            assert r2.result is r1.result
            assert len(problems["a"].calls) == 1
            assert "same numbers" not in problems
        run(body())

    def test_breaker_sheds_after_failures_then_probe_recovers(self):
        async def body():
            service, problems = make_service(
                {"a": Behavior(fail_times=2)},
                policy=RecoveryPolicy(max_retries=0, backoff_s=0.0),
                failure_threshold=2,
                probe_after=1,
            )
            async with service:
                req = SolveRequest(scenario("a"))
                assert (await service.submit(req)).status == "failed"
                assert (await service.submit(req)).status == "failed"
                shed = await service.submit(req)   # open: shed + arms
                assert shed.status == "shed"
                assert shed.reason == "breaker_open"
                probe = await service.submit(req)  # half-open probe
                assert probe.status == "ok"
                assert (await service.submit(req)).status == "ok"
            br = service.breakers[scenario("a").digest]
            walk = [(t["from"], t["to"]) for t in br.transitions]
            assert walk == [("closed", "open"), ("open", "half_open"),
                            ("half_open", "closed")]
        run(body())

    def test_degradation_rung_cheaper_preconditioner(self):
        async def body():
            service, problems = make_service(
                degrade_precond_depth=0, degrade_mesh_depth=100
            )
            async with service:
                resp = await service.submit(SolveRequest(scenario("a")))
            assert resp.status == "degraded"
            assert resp.reason == "cheap_precond"
            # mdsc's next-cheaper rung in PRECOND_COST_ORDER is vline
            assert problems["a"].calls[0]["preconditioner"] == "vline"
            assert resp.solved == scenario("a")
        run(body())

    def test_degradation_rung_coarser_mesh(self):
        async def body():
            service, problems = make_service(degrade_mesh_depth=0)
            async with service:
                resp = await service.submit(
                    SolveRequest(scenario("a", resolution_km=500.0))
                )
            assert resp.status == "degraded"
            assert resp.reason == "coarse_mesh"
            assert resp.solved.name == "a~coarse"
            assert resp.solved.resolution_km == 1000.0
            assert "a~coarse" in problems and "a" not in problems
        run(body())

    def test_full_queue_serves_cached_then_sheds(self):
        async def body():
            gate = threading.Event()
            behaviors = {"slow1": Behavior(block=gate), "slow2": Behavior(block=gate)}
            service, _ = make_service(behaviors, workers=1, queue_size=1)
            async with service:
                # warm the cached-result rung for scenario a
                warm = await service.submit(SolveRequest(scenario("a")))
                assert warm.status == "ok"
                # occupy the worker, then fill the queue
                t1 = asyncio.create_task(
                    service.submit(SolveRequest(scenario("slow1", num_layers=4)))
                )
                await asyncio.sleep(0.05)
                t2 = asyncio.create_task(
                    service.submit(SolveRequest(scenario("slow2", num_layers=5)))
                )
                await asyncio.sleep(0.05)
                assert service.pool.depth() >= 1
                # queue full + known-good result: cached rung
                cached = await service.submit(SolveRequest(scenario("a")))
                assert cached.status == "degraded"
                assert cached.reason == "cached"
                assert cached.result is warm.result
                # queue full + nothing cached: shed
                shed = await service.submit(
                    SolveRequest(scenario("new", num_layers=6))
                )
                assert shed.status == "shed"
                assert shed.reason == "queue_full"
                gate.set()
                await asyncio.gather(t1, t2)
        run(body())

    def test_worker_kill_resumes_from_checkpoint(self):
        async def body():
            ks = KillSwitch()
            s = scenario("a")
            ks.arm(s.digest, 1)
            service, problems = make_service(kill_switch=ks)
            async with service:
                resp = await service.submit(SolveRequest(s))
            assert resp.status == "ok"
            assert resp.resumes == 1
            assert ks.fired == [(s.digest, 1)]
            assert service.pool.deaths == 1
            calls = problems["a"].calls
            assert len(calls) == 2
            assert calls[0]["resume_from"] is None
            assert calls[1]["resume_from"].step == 1
        run(body())


# ----------------------------------------------------------------------
# HTTP frontend
# ----------------------------------------------------------------------

async def _http(port: int, raw: str) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw.encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    code = int(head.split(b" ")[1])
    return code, body


class TestHttp:
    def test_endpoints(self):
        async def body():
            service, _ = make_service()
            bound: list[int] = []
            async with service:
                server_task = asyncio.create_task(
                    serve_http(service, port=0, ready_cb=bound.append)
                )
                while not bound:
                    await asyncio.sleep(0.01)
                port = bound[0]

                code, payload = await _http(
                    port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                assert code == 200
                health = json.loads(payload)
                assert health["status"] == "ok"
                assert health["workers"] == 2

                doc = json.dumps({"name": "http-demo", "resolution_km": 600})
                code, payload = await _http(
                    port,
                    "POST /solve HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Length: {len(doc)}\r\n\r\n{doc}",
                )
                assert code == 200
                solved = json.loads(payload)
                assert solved["status"] == "ok"
                assert solved["scenario"] == "http-demo"

                code, payload = await _http(
                    port, "POST /solve HTTP/1.1\r\nHost: x\r\n"
                          "Content-Length: 2\r\n\r\n{}",
                )
                assert code == 200  # all-defaults scenario is valid

                bad = json.dumps({"name": "x", "preconditioner": "bogus"})
                code, _ = await _http(
                    port,
                    "POST /solve HTTP/1.1\r\nHost: x\r\n"
                    f"Content-Length: {len(bad)}\r\n\r\n{bad}",
                )
                assert code == 400

                code, payload = await _http(
                    port, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                assert code == 200
                families = parse_exposition(payload.decode())
                assert "serve_requests" in families

                code, _ = await _http(
                    port, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                assert code == 404

                server_task.cancel()
                try:
                    await server_task
                except asyncio.CancelledError:
                    pass
        run(body())
