"""Unit and property tests for the Sacado-like forward AD types."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import SFad, DFad, FadArray, is_fad, fad_value, fad_derivs


def x_var(v, n=2, i=0):
    return SFad(n).independent(np.asarray(v, dtype=float), i)


class TestConstruction:
    def test_sfad_factory_caches(self):
        assert SFad(16) is SFad(16)
        assert SFad(16) is not SFad(8)
        assert SFad(16).NUM_DERIVS == 16

    def test_sfad_rejects_wrong_dim(self):
        with pytest.raises(ValueError):
            SFad(4)(np.zeros(3), np.zeros((3, 5)))

    def test_sfad_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SFad(0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FadArray(np.zeros(3), np.zeros((4, 2)))

    def test_constant_has_zero_derivs(self):
        c = SFad(3).constant([1.0, 2.0])
        assert np.all(c.dx == 0.0)
        assert c.num_derivs == 3

    def test_independent_seeds_unit_vector(self):
        x = SFad(4).independent([5.0], 2)
        assert x.dx[0, 2] == 1.0
        assert np.sum(np.abs(x.dx)) == 1.0

    def test_dfad_any_size(self):
        d = DFad(np.zeros(2), np.zeros((2, 7)))
        assert d.num_derivs == 7

    def test_getitem_setitem(self):
        a = SFad(2).constant(np.arange(4.0))
        b = a[1:3]
        assert b.shape == (2,)
        a[0] = SFad(2).independent(9.0, 1)
        assert a.val[0] == 9.0
        assert a.dx[0, 1] == 1.0
        a[1] = 3.0
        assert a.val[1] == 3.0 and np.all(a.dx[1] == 0.0)

    def test_reshape_roundtrip(self):
        a = SFad(3).constant(np.arange(6.0).reshape(2, 3))
        b = a.reshape(6).reshape(2, 3)
        assert np.array_equal(b.val, a.val)


class TestArithmetic:
    def test_add_fad_fad(self):
        x = x_var(2.0, 2, 0)
        y = x_var(3.0, 2, 1)
        z = x + y
        assert z.val == 5.0
        assert np.allclose(z.dx, [1.0, 1.0])

    def test_mul_product_rule(self):
        x = x_var(2.0, 2, 0)
        y = x_var(3.0, 2, 1)
        z = x * y
        assert z.val == 6.0
        assert np.allclose(z.dx, [3.0, 2.0])

    def test_scalar_mix(self):
        x = x_var(2.0, 2, 0)
        z = 3.0 * x + 1.0 - x / 2.0
        assert z.val == 6.0
        assert np.allclose(z.dx, [2.5, 0.0])

    def test_rsub_rdiv(self):
        x = x_var(4.0, 1, 0)
        assert (10.0 - x).val == 6.0
        assert np.allclose((10.0 - x).dx, [-1.0])
        z = 8.0 / x
        assert z.val == 2.0
        assert np.allclose(z.dx, [-0.5])

    def test_div_quotient_rule(self):
        x = x_var(6.0, 2, 0)
        y = x_var(2.0, 2, 1)
        z = x / y
        assert z.val == 3.0
        assert np.allclose(z.dx, [0.5, -1.5])

    def test_pow_constant_exponent(self):
        x = x_var(3.0, 1, 0)
        z = x**2
        assert z.val == 9.0
        assert np.allclose(z.dx, [6.0])

    def test_pow_fad_exponent(self):
        x = x_var(2.0, 2, 0)
        p = x_var(3.0, 2, 1)
        z = x**p
        assert z.val == 8.0
        assert np.allclose(z.dx, [12.0, 8.0 * np.log(2.0)])

    def test_rpow(self):
        x = x_var(2.0, 1, 0)
        z = 3.0**x
        assert z.val == 9.0
        assert np.allclose(z.dx, [9.0 * np.log(3.0)])

    def test_neg_abs(self):
        x = x_var(-2.0, 1, 0)
        assert (-x).val == 2.0 and np.allclose((-x).dx, [-1.0])
        assert abs(x).val == 2.0 and np.allclose(abs(x).dx, [-1.0])

    def test_comparisons_use_values(self):
        x = x_var(1.0)
        y = x_var(2.0)
        assert bool(x < y) and bool(y > x) and bool(x <= 1.0) and bool(y >= 2.0)
        assert bool(x == 1.0) and bool(x != 2.0)

    def test_vectorized_broadcast(self):
        cls = SFad(2)
        x = cls(np.arange(4.0), np.tile([1.0, 0.0], (4, 1)))
        z = x * x + 2.0 * x
        assert np.allclose(z.val, np.arange(4.0) ** 2 + 2 * np.arange(4.0))
        assert np.allclose(z.dx[:, 0], 2 * np.arange(4.0) + 2.0)


class TestHelpers:
    def test_is_fad(self):
        assert is_fad(x_var(1.0))
        assert not is_fad(np.zeros(3))

    def test_fad_value_passthrough(self):
        assert fad_value(2.5) == 2.5
        assert fad_value(x_var(2.5)) == 2.5

    def test_fad_derivs(self):
        assert np.allclose(fad_derivs(x_var(1.0, 3, 1)), [0, 1, 0])
        assert fad_derivs(np.zeros(2), 3).shape == (2, 3)
        with pytest.raises(ValueError):
            fad_derivs(1.0)


@st.composite
def small_floats(draw):
    return draw(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))


class TestProperties:
    @given(small_floats(), small_floats())
    @settings(max_examples=60, deadline=None)
    def test_polynomial_derivative_matches_analytic(self, a, b):
        x = x_var(a, 1, 0)
        p = x * x * x - 2.0 * x * x + b * x + 7.0
        assert np.allclose(p.val, a**3 - 2 * a**2 + b * a + 7.0, atol=1e-9)
        assert np.allclose(p.dx[0], 3 * a**2 - 4 * a + b, rtol=1e-12, atol=1e-12)

    @given(small_floats(), small_floats())
    @settings(max_examples=60, deadline=None)
    def test_product_rule_consistency(self, a, b):
        x = x_var(a, 2, 0)
        y = x_var(b, 2, 1)
        lhs = (x * y).dx
        rhs = (y * x).dx
        assert np.allclose(lhs, rhs)
        assert np.allclose(lhs, [b, a])

    @given(st.floats(min_value=0.5, max_value=10.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_div_times_recovers(self, a):
        x = x_var(a, 1, 0)
        z = (x / 3.0) * 3.0
        assert np.allclose(z.val, a)
        assert np.allclose(z.dx, [1.0])

    @given(small_floats())
    @settings(max_examples=40, deadline=None)
    def test_chain_vs_finite_difference(self, a):
        def f(v):
            return v * v * 0.5 + 3.0 * v

        x = x_var(a, 1, 0)
        z = f(x)
        h = 1e-6 * max(1.0, abs(a))
        fd = (f(a + h) - f(a - h)) / (2 * h)
        assert np.allclose(z.dx[0], fd, rtol=1e-5, atol=1e-5)
