"""Tests for planar footprints, geometry, extrusion and partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import (
    quad_footprint,
    masked_quad_footprint,
    antarctica_geometry,
    vialov_profile,
    extrude_footprint,
    uniform_sigma_levels,
    partition_footprint,
    HaloExchange,
    TrafficMeter,
    halo_statistics,
)


class TestQuadFootprint:
    def test_counts(self):
        fp = quad_footprint(4, 3, 4.0, 3.0)
        assert fp.num_nodes == 5 * 4
        assert fp.num_elems == 12
        assert fp.nodes_per_elem == 4

    def test_euler_characteristic_disk(self):
        fp = quad_footprint(5, 7, 1.0, 1.0)
        assert fp.euler_characteristic() == 1

    def test_areas_positive_and_sum(self):
        fp = quad_footprint(4, 4, 2.0, 2.0)
        areas = fp.elem_areas()
        assert np.all(areas > 0)
        assert np.isclose(areas.sum(), 4.0)
        fp.validate()

    def test_boundary_nodes(self):
        fp = quad_footprint(3, 3, 1.0, 1.0)
        # 4x4 nodes, boundary ring has 12
        assert len(fp.boundary_nodes) == 12

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            quad_footprint(0, 3, 1.0, 1.0)

    @given(st.integers(2, 8), st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_euler_property(self, nx, ny):
        fp = quad_footprint(nx, ny, 1.0, 1.0)
        assert fp.euler_characteristic() == 1


class TestMaskedFootprint:
    def test_disk_mask(self):
        fp = masked_quad_footprint(10, 10, 2.0, 2.0, lambda x, y: (x - 1) ** 2 + (y - 1) ** 2 < 0.8**2)
        assert 0 < fp.num_elems < 100
        fp.validate()
        # compact numbering
        assert fp.elems.max() == fp.num_nodes - 1

    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            masked_quad_footprint(4, 4, 1.0, 1.0, lambda x, y: np.zeros_like(x, dtype=bool))


class TestGeometry:
    def test_vialov_monotone_decreasing(self):
        r = np.linspace(0, 1.0e6, 50)
        h = vialov_profile(r, 1.0e6, 3000.0)
        assert h[0] == 3000.0
        assert h[-1] == 0.0
        assert np.all(np.diff(h) <= 1e-9)

    def test_antarctica_fields_shapes(self):
        geo = antarctica_geometry()
        x = np.linspace(0, geo.lx, 20)
        y = np.full(20, geo.ly / 2)
        for fn in (geo.thickness, geo.surface, geo.bed, geo.basal_friction):
            assert fn(x, y).shape == (20,)

    def test_surface_above_base(self):
        geo = antarctica_geometry()
        rng = np.random.default_rng(1)
        x = rng.uniform(0, geo.lx, 200)
        y = rng.uniform(0, geo.ly, 200)
        assert np.all(geo.surface(x, y) >= geo.lower_surface(x, y) - 1e-9)

    def test_center_is_iced(self):
        geo = antarctica_geometry()
        cx, cy = geo.center
        assert geo.mask(np.array([cx]), np.array([cy]))[0]
        assert geo.thickness(np.array([cx]), np.array([cy]))[0] > 3000.0

    def test_temperature_monotone_in_height(self):
        geo = antarctica_geometry()
        cx, cy = geo.center
        t_bed = geo.temperature(cx, cy, 0.0)
        t_srf = geo.temperature(cx, cy, 1.0)
        assert t_bed > t_srf  # bed warmer than surface

    def test_floating_fringe_exists(self):
        geo = antarctica_geometry()
        rng = np.random.default_rng(2)
        x = rng.uniform(0, geo.lx, 4000)
        y = rng.uniform(0, geo.ly, 4000)
        iced = geo.mask(x, y)
        grounded = geo.grounded(x, y)
        assert np.any(iced & ~grounded), "expected some floating ice"
        assert np.any(iced & grounded)


class TestExtrusion:
    def _mesh(self, nz=4):
        geo = antarctica_geometry()
        fp = masked_quad_footprint(12, 12, geo.lx, geo.ly, geo.mask)
        return extrude_footprint(fp, geo, nz)

    def test_counts(self):
        m = self._mesh(nz=4)
        assert m.num_nodes == m.footprint.num_nodes * 5
        assert m.num_elems == m.footprint.num_elems * 4
        assert m.elem_type == "hex8"
        assert m.nodes_per_elem == 8

    def test_column_numbering(self):
        m = self._mesh(nz=3)
        assert m.node_id(2, 1) == 2 * 4 + 1
        assert np.array_equal(m.column_nodes(0), [0, 1, 2, 3])
        assert m.elem_id(5, 2) == 5 * 3 + 2
        assert m.elem_layer(m.elem_id(5, 2)) == 2
        assert m.elem_column(m.elem_id(5, 2)) == 5

    def test_z_increases_within_column(self):
        m = self._mesh(nz=5)
        for n2d in (0, m.footprint.num_nodes // 2):
            z = m.coords[m.column_nodes(n2d), 2]
            assert np.all(np.diff(z) > 0)

    def test_basal_and_surface_sets(self):
        m = self._mesh(nz=4)
        assert len(m.basal_elems()) == m.footprint.num_elems
        assert np.all(m.elem_layer(m.basal_elems()) == 0)
        assert np.all(m.elem_layer(m.surface_elems()) == 3)
        assert len(m.basal_nodes()) == m.footprint.num_nodes
        z_base = m.coords[m.basal_nodes(), 2]
        z_surf = m.coords[m.surface_nodes(), 2]
        assert np.all(z_surf > z_base)

    def test_basal_faces_are_bottom_quads(self):
        m = self._mesh(nz=4)
        faces = m.basal_face_nodes()
        assert faces.shape == (m.footprint.num_elems, 4)
        assert np.all(faces % m.levels == 0)  # all level-0 nodes

    def test_lateral_nodes_cover_all_levels(self):
        m = self._mesh(nz=4)
        lat = m.lateral_nodes()
        assert len(lat) == len(m.footprint.boundary_nodes) * m.levels

    def test_bad_sigma_rejected(self):
        geo = antarctica_geometry()
        fp = masked_quad_footprint(8, 8, geo.lx, geo.ly, geo.mask)
        with pytest.raises(ValueError):
            extrude_footprint(fp, geo, 4, sigma=np.array([0.0, 0.5, 1.0]))
        with pytest.raises(ValueError):
            extrude_footprint(fp, geo, 2, sigma=np.array([0.0, 0.7, 0.5, 1.0])[:3])

    def test_sigma_levels(self):
        s = uniform_sigma_levels(4)
        assert len(s) == 5 and s[0] == 0.0 and s[-1] == 1.0
        with pytest.raises(ValueError):
            uniform_sigma_levels(0)


class TestVoronoi:
    def test_mpas_mesh_and_dual(self):
        from repro.mesh import mpas_voronoi_mesh, triangle_footprint_from_voronoi

        geo = antarctica_geometry()
        vm = mpas_voronoi_mesh(geo.mask, geo.lx, geo.ly, spacing=4.0e5, lloyd_iters=1)
        assert vm.num_cells > 20
        assert vm.num_triangles > 20
        # adjacency is symmetric
        for c in range(0, vm.num_cells, max(1, vm.num_cells // 10)):
            for nb in vm.neighbors(c):
                assert c in vm.neighbors(int(nb))
        fp = triangle_footprint_from_voronoi(vm)
        assert fp.elem_type == "tri3"
        fp.validate()
        areas = fp.elem_areas()
        assert np.all(areas > 0)

    def test_degrees_near_six(self):
        from repro.mesh import mpas_voronoi_mesh

        geo = antarctica_geometry()
        vm = mpas_voronoi_mesh(geo.mask, geo.lx, geo.ly, spacing=3.0e5, lloyd_iters=2)
        interior_degree = np.median(vm.degree())
        assert 5 <= interior_degree <= 7  # hexagonal-ish CVT

    def test_cell_areas_positive(self):
        from repro.mesh import mpas_voronoi_mesh

        geo = antarctica_geometry()
        vm = mpas_voronoi_mesh(geo.mask, geo.lx, geo.ly, spacing=4.0e5)
        assert np.all(vm.cell_areas() > 0)

    def test_too_sparse_rejected(self):
        from repro.mesh import mpas_voronoi_mesh

        with pytest.raises(ValueError):
            mpas_voronoi_mesh(lambda x, y: np.zeros_like(x, dtype=bool), 1.0, 1.0, 0.5)


class TestPartition:
    def _fp(self):
        return quad_footprint(8, 8, 1.0, 1.0)

    def test_partition_covers_all(self):
        fp = self._fp()
        p = partition_footprint(fp, 4)
        assert np.array_equal(np.sort(np.unique(p.elem_part)), np.arange(4))
        total = sum(len(p.owned_elems(i)) for i in range(4))
        assert total == fp.num_elems

    def test_balance(self):
        p = partition_footprint(self._fp(), 4)
        assert p.balance() <= 1.1

    def test_node_ownership_unique(self):
        fp = self._fp()
        p = partition_footprint(fp, 3)
        owned = np.concatenate([p.owned_nodes(i) for i in range(3)])
        assert len(owned) == fp.num_nodes
        assert len(np.unique(owned)) == fp.num_nodes

    def test_ghosts_disjoint_from_owned(self):
        p = partition_footprint(self._fp(), 4)
        for part in range(4):
            assert not np.intersect1d(p.ghost_nodes(part), p.owned_nodes(part)).size

    def test_invalid_nparts(self):
        with pytest.raises(ValueError):
            partition_footprint(self._fp(), 0)
        with pytest.raises(ValueError):
            partition_footprint(quad_footprint(1, 1, 1, 1), 5)

    def test_halo_scatter_add_matches_global(self):
        """Per-part assembly + halo reduction == serial assembly."""
        fp = self._fp()
        p = partition_footprint(fp, 4)
        halo = HaloExchange(p)
        rng = np.random.default_rng(3)
        elem_weight = rng.uniform(1.0, 2.0, fp.num_elems)

        # serial: every element adds its weight to its 4 nodes
        global_sum = np.zeros(fp.num_nodes)
        np.add.at(global_sum, fp.elems.ravel(), np.repeat(elem_weight, 4))

        contribs = []
        for part in range(4):
            local_nodes = halo.local_nodes(part)
            g2l = {g: l for l, g in enumerate(local_nodes)}
            acc = np.zeros(len(local_nodes))
            for e in p.owned_elems(part):
                for n in fp.elems[e]:
                    acc[g2l[n]] += elem_weight[e]
            contribs.append(acc)
        out = halo.scatter_add(contribs)
        assert np.allclose(out, global_sum)

    def test_halo_gather(self):
        p = partition_footprint(self._fp(), 2)
        halo = HaloExchange(p)
        field = np.arange(p.footprint.num_nodes, dtype=float)
        local = halo.gather(0, field)
        assert np.array_equal(local, field[halo.local_nodes(0)])


class TestHaloMaps:
    """Per-neighbor send/recv index maps and the traffic meter."""

    def _halo(self, nparts=4):
        part = partition_footprint(quad_footprint(8, 8, 1.0, 1.0), nparts)
        return part, HaloExchange(part)

    def test_send_recv_maps_mirror(self):
        part, halo = self._halo()
        for p in range(part.nparts):
            for q in range(part.nparts):
                assert np.array_equal(halo.send_map(p, q), halo.recv_map(q, p))

    def test_recv_maps_partition_ghosts(self):
        part, halo = self._halo()
        for p in range(part.nparts):
            pieces = [halo.recv_map(p, q) for q in halo.neighbors(p)]
            pieces = [x for x in pieces if len(x)]
            got = np.sort(np.concatenate(pieces)) if pieces else np.empty(0, np.int64)
            assert np.array_equal(got, np.sort(halo.ghost_nodes(p)))

    def test_recv_nodes_owned_by_neighbor(self):
        part, halo = self._halo()
        for p in range(part.nparts):
            for q in halo.neighbors(p):
                nodes = halo.recv_map(p, q)
                assert np.all(part.node_part[nodes] == q)

    def test_partition_neighbors_symmetric(self):
        part, _ = self._halo()
        for p in range(part.nparts):
            for q in part.neighbors(p):
                assert p in part.neighbors(int(q))

    def test_meter_counts_gather_bytes(self):
        part, halo = self._halo()
        field = np.zeros(part.footprint.num_nodes)
        halo.gather(1, field)
        expected = len(halo.ghost_nodes(1)) * 8
        assert int(halo.meter.received[1]) == expected
        assert halo.meter.channel_bytes["vector_gather"] == expected
        assert halo.meter.events["gather"] == 1

    def test_meter_counts_2d_fields(self):
        part, halo = self._halo()
        field = np.zeros((part.footprint.num_nodes, 2))
        halo.gather(1, field)
        assert int(halo.meter.received[1]) == len(halo.ghost_nodes(1)) * 2 * 8

    def test_meter_summary_is_jsonable(self):
        import json

        part, halo = self._halo()
        halo.gather(2, np.zeros(part.footprint.num_nodes))
        s = halo.meter.summary()
        json.dumps(s)
        assert s["nparts"] == part.nparts
        assert s["total_bytes"] == sum(s["channel_bytes"].values())

    def test_shared_meter(self):
        part, _ = self._halo()
        meter = TrafficMeter(part.nparts)
        halo = HaloExchange(part, meter)
        assert halo.meter is meter


class TestScatterAddDtype:
    """scatter_add must preserve the promoted dtype of its inputs."""

    def _setup(self, nparts=2):
        part = partition_footprint(quad_footprint(4, 4, 1.0, 1.0), nparts)
        return part, HaloExchange(part)

    def test_complex_not_truncated(self):
        part, halo = self._setup()
        contribs = [
            (np.arange(len(halo.local_nodes(p)), dtype=np.complex128) * (1.0 + 2.0j))
            for p in range(part.nparts)
        ]
        out = halo.scatter_add(contribs)
        assert out.dtype == np.complex128
        assert np.abs(out.imag).max() > 0.0

    def test_mixed_dtypes_promote(self):
        part, halo = self._setup()
        contribs = [
            np.ones(len(halo.local_nodes(0)), dtype=np.float32),
            np.ones(len(halo.local_nodes(1)), dtype=np.float64),
        ]
        assert halo.scatter_add(contribs).dtype == np.float64

    def test_2d_ndof_fields(self):
        part, halo = self._setup()
        rng = np.random.default_rng(11)
        contribs = [
            rng.normal(size=(len(halo.local_nodes(p)), 2)) for p in range(part.nparts)
        ]
        out = halo.scatter_add(contribs)
        assert out.shape == (part.footprint.num_nodes, 2)
        # serial reference
        ref = np.zeros_like(out)
        for p in range(part.nparts):
            np.add.at(ref, halo.local_nodes(p), contribs[p])
        assert np.array_equal(out, ref)

    def test_mismatched_trailing_dims_rejected(self):
        part, halo = self._setup()
        contribs = [
            np.zeros((len(halo.local_nodes(0)), 2)),
            np.zeros((len(halo.local_nodes(1)), 3)),
        ]
        with pytest.raises(ValueError):
            halo.scatter_add(contribs)


class TestHaloStatistics:
    def test_counts_match_exchange(self):
        part = partition_footprint(quad_footprint(8, 8, 1.0, 1.0), 4)
        halo = HaloExchange(part)
        stats = halo_statistics(part)
        assert stats.nparts == 4
        for p in range(4):
            assert stats.ghost_nodes[p] == len(halo.ghost_nodes(p))
            assert stats.owned_elems[p] == len(part.owned_elems(p))
        assert sum(stats.owned_elems) == part.footprint.num_elems

    def test_ghost_bytes_formula(self):
        part = partition_footprint(quad_footprint(8, 8, 1.0, 1.0), 2)
        stats = halo_statistics(part)
        per_rank = stats.ghost_bytes_per_exchange(levels=5, ndof=2)
        assert per_rank == [g * 5 * 2 * 8 for g in stats.ghost_nodes]

    def test_to_dict_jsonable(self):
        import json

        stats = halo_statistics(partition_footprint(quad_footprint(8, 8, 1.0, 1.0), 4))
        json.dumps(stats.to_dict())
        assert stats.elem_imbalance >= 1.0
