"""Shared pytest configuration.

Registers hypothesis profiles: CI runs derandomized (``derandomize=True``
makes example generation a pure function of the test body, so a red CI
is reproducible locally and a green CI never depends on the draw), local
runs keep random exploration to find new counterexamples over time.
Select explicitly with ``HYPOTHESIS_PROFILE=ci|dev``; otherwise the
``CI`` environment variable decides.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)

settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev")
)
