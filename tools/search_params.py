"""Grid search over machine-model calibration constants.

Finds the spec constants that best reproduce the paper's headline
ratios; the winner is copied into ``repro/gpusim/specs.py``.
"""

import dataclasses
import itertools
import math

import numpy as np

from repro.gpusim import GPUSimulator
from repro.gpusim.specs import A100, MI250X_GCD
from repro.kokkos.policy import LaunchBounds
from repro.core.launch import default_launch_bounds
from repro.perf.theoretical import theoretical_minimum

AMD_TUNED = LaunchBounds(128, 2)
NC = 256_000

#: squared-log-error charged per target when a candidate spec produces a
#: ratio log() can't score (zero, negative, or non-finite) -- far worse
#: than any plausible real point, so the sweep skips it instead of dying
BAD_POINT_PENALTY = 100.0


def evaluate(a100, mi):
    """Return (error, metrics dict)."""
    out = {}
    sims = {"A": GPUSimulator(a100), "M": GPUSimulator(mi)}
    th = {m: theoretical_minimum(f"optimized-{m}", NC) for m in ("jacobian", "residual")}

    for tag, sim, spec in (("A", sims["A"], a100), ("M", sims["M"], mi)):
        for mode in ("jacobian", "residual"):
            b = sim.run(f"baseline-{mode}")
            lb = AMD_TUNED if tag == "M" else None
            o = sim.run(f"optimized-{mode}", launch_bounds=lb)
            out[f"{tag}_{mode}_speedup"] = b.time_s / o.time_s
            out[f"{tag}_{mode}_edm_b"] = th[mode].total_bytes / b.hbm_bytes
            out[f"{tag}_{mode}_edm_o"] = th[mode].total_bytes / o.hbm_bytes
            out[f"{tag}_{mode}_et_b"] = th[mode].min_time_s(spec.hbm_bytes_per_s) / b.time_s
            out[f"{tag}_{mode}_et_o"] = th[mode].min_time_s(spec.hbm_bytes_per_s) / o.time_s

    # Table II ratios on MI
    simm = sims["M"]
    for mode, target in (("jacobian", 1.54), ("residual", 1.17)):
        dflt = simm.run(f"optimized-{mode}", launch_bounds=default_launch_bounds(mode))
        tuned = simm.run(f"optimized-{mode}", launch_bounds=AMD_TUNED)
        out[f"t2_{mode}"] = dflt.time_s / tuned.time_s

    return score(out), out


#: (paper value, weight) per metric key produced by :func:`evaluate`
TARGETS = {
    "A_jacobian_speedup": (3.3, 3.0),
    "A_residual_speedup": (2.2, 3.0),
    "M_jacobian_speedup": (2.7, 3.0),
    "M_residual_speedup": (3.5, 3.0),
    "t2_jacobian": (1.54, 2.0),
    "t2_residual": (1.17, 2.0),
    "A_jacobian_edm_b": (0.53, 1.0),
    "M_jacobian_edm_b": (0.42, 1.0),
    "A_residual_edm_b": (0.65, 0.5),
    "M_residual_edm_b": (0.41, 0.5),
    "A_jacobian_edm_o": (0.84, 1.0),
    "M_jacobian_edm_o": (0.81, 1.0),
    "A_jacobian_et_o": (0.79, 1.0),
    "M_jacobian_et_o": (0.53, 1.0),
    "A_residual_et_o": (0.88, 1.0),
    "M_residual_et_o": (0.60, 1.0),
}


def score(out):
    """Weighted squared-log error of ``out`` against :data:`TARGETS`."""
    err = 0.0
    for k, (t, w) in TARGETS.items():
        v = out[k]
        # a degenerate candidate spec can drive a ratio to zero, negative,
        # or non-finite territory; log() would raise and abort the whole
        # sweep, so charge a flat worst-case penalty and move on
        if not math.isfinite(v) or v <= 0.0:
            err += w * BAD_POINT_PENALTY
            continue
        err += w * (math.log(v / t)) ** 2
    return err


def build_grids(quick: bool = False):
    """Search grids per GPU; ``quick`` collapses them to a smoke-sized sweep."""
    grid_a = {
        "interleave_l2": [0.15, 0.25, 0.35, 0.5],
        "rmw_bandwidth_penalty": [0.40, 0.50, 0.60],
        "bw_half_occupancy": [0.02, 0.05],
    }
    grid_m = {
        "interleave_l2": [0.012, 0.02, 0.035, 0.06],
        "rmw_bandwidth_penalty": [0.25, 0.35, 0.45],
        "bw_half_occupancy": [0.08, 0.15, 0.25],
        "scratch_hbm_fraction": [0.25, 0.4, 0.55],
    }
    if quick:
        grid_a = {k: v[:1] for k, v in grid_a.items()}
        grid_m = {k: v[:1] for k, v in grid_m.items()}
    return grid_a, grid_m


def search(grid_a, grid_m, limit=None, progress=print):
    """Exhaustive sweep; returns (err, a100_params, mi_params, metrics)."""
    best = None
    keys_a, vals_a = zip(*grid_a.items())
    keys_m, vals_m = zip(*grid_m.items())
    combos_a = list(itertools.product(*vals_a))
    combos_m = list(itertools.product(*vals_m))
    total = len(combos_a) * len(combos_m)
    if limit is not None:
        total = min(total, limit)
    progress(f"{total} combos")
    evaluated = 0
    for ca in combos_a:
        a100 = dataclasses.replace(A100, **dict(zip(keys_a, ca)))
        for cm in combos_m:
            if limit is not None and evaluated >= limit:
                return best
            mi = dataclasses.replace(MI250X_GCD, **dict(zip(keys_m, cm)))
            err, out = evaluate(a100, mi)
            evaluated += 1
            if best is None or err < best[0]:
                best = (err, dict(zip(keys_a, ca)), dict(zip(keys_m, cm)), out)
    return best


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="one-point grids: smoke-test the sweep plumbing"
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="stop after evaluating this many combos"
    )
    args = parser.parse_args(argv)
    if args.limit is not None and args.limit <= 0:
        parser.error("--limit must be a positive integer")

    grid_a, grid_m = build_grids(quick=args.quick)
    best = search(grid_a, grid_m, limit=args.limit)
    err, pa, pm, out = best
    print("best err", err)
    print("A100:", pa)
    print("MI:", pm)
    for k in sorted(out):
        print(f"  {k:24s} {out[k]:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
