"""Calibration driver: prints Table II/III/IV analogues from the simulator.

Used during development to fix the machine-model constants in
``repro/gpusim/specs.py``; kept in-tree so the calibration is
reproducible and inspectable.
"""

import numpy as np

from repro.gpusim import GPUSimulator, A100, MI250X_GCD, ANTARCTICA_16KM
from repro.kokkos.policy import LaunchBounds
from repro.core.launch import TABLE2_LAUNCH_CONFIGS, default_launch_bounds
from repro.perf.theoretical import theoretical_minimum

AMD_TUNED = LaunchBounds(128, 2)


def table3():
    print("=== Table III analogue (time per call, speedup) ===")
    for spec in (A100, MI250X_GCD):
        sim = GPUSimulator(spec)
        for mode in ("jacobian", "residual"):
            b = sim.run(f"baseline-{mode}")
            if spec.vendor == "amd":
                o = sim.run(f"optimized-{mode}", launch_bounds=AMD_TUNED)
            else:
                o = sim.run(f"optimized-{mode}")
            print(
                f"{spec.name:10s} {mode:8s} base={b.time_s:.2e} opt={o.time_s:.2e} "
                f"speedup={b.time_s/o.time_s:4.2f}x   (paper: "
                f"{'3.3/2.7' if mode=='jacobian' else '2.2/3.5'})"
            )


def table4():
    print("\n=== Table IV analogue (e_time / e_DM) ===")
    rows = {}
    for spec in (A100, MI250X_GCD):
        sim = GPUSimulator(spec)
        for mode in ("jacobian", "residual"):
            th = theoretical_minimum(f"optimized-{mode}", ANTARCTICA_16KM.num_cells)
            tmin = th.min_time_s(spec.hbm_bytes_per_s)
            for impl in ("baseline", "optimized"):
                lb = AMD_TUNED if (spec.vendor == "amd" and impl == "optimized") else None
                p = sim.run(f"{impl}-{mode}", launch_bounds=lb)
                rows[(impl, mode, spec.name)] = (tmin / p.time_s, th.total_bytes / p.hbm_bytes)
    paper = {
        ("baseline", "jacobian"): ((0.39, 0.38), (0.53, 0.42)),
        ("baseline", "residual"): ((0.62, 0.42), (0.65, 0.41)),
        ("optimized", "jacobian"): ((0.79, 0.53), (0.84, 0.81)),
        ("optimized", "residual"): ((0.88, 0.60), (1.00, 1.00)),
    }
    for (impl, mode), ((pt_a, pt_m), (pd_a, pd_m)) in paper.items():
        et_a, ed_a = rows[(impl, mode, "A100")]
        et_m, ed_m = rows[(impl, mode, "MI250X-GCD")]
        print(
            f"{impl:9s} {mode:8s}  e_time A100 {et_a:5.1%} (paper {pt_a:.0%})  MI {et_m:5.1%} ({pt_m:.0%})"
            f"   e_DM A100 {ed_a:5.1%} ({pd_a:.0%})  MI {ed_m:5.1%} ({pd_m:.0%})"
        )


def table2():
    print("\n=== Table II analogue (MI250X LaunchBounds sweep) ===")
    sim = GPUSimulator(MI250X_GCD)
    paper_jac = [8.3e-2, 5.4e-2, 8.3e-2, 5.4e-2, 8.5e-2]
    paper_res = [2.8e-3, 2.4e-3, 2.6e-3, 2.4e-3, 3.0e-3]
    for mode, paper_t in (("jacobian", paper_jac), ("residual", paper_res)):
        base = None
        for lb, pt in zip(TABLE2_LAUNCH_CONFIGS, paper_t):
            eff_lb = lb if lb.explicit else default_launch_bounds(mode)
            p = sim.run(f"optimized-{mode}", launch_bounds=eff_lb)
            if base is None:
                base = p.time_s
            print(
                f"{mode:8s} {str(lb):8s} t={p.time_s:.2e} speedup={base/p.time_s:4.2f}x "
                f"vgpr={p.arch_vgprs}/{p.accum_vgprs}  (paper t={pt:.1e}, "
                f"speedup={paper_t[0]/pt:4.2f}x)"
            )


TABLES = {"2": table2, "3": table3, "4": table4}


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--table",
        choices=["2", "3", "4", "all"],
        default="all",
        help="which paper-table analogue to print (default: all)",
    )
    args = parser.parse_args(argv)
    if args.table == "all":
        table3()
        table4()
        table2()
    else:
        TABLES[args.table]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
