"""Regenerate the golden baselines under ``tests/goldens/``.

Run this ONLY after an intentional numerics change (new kernel math,
solver retuning, machine-model recalibration), then review the printed
drift against the old goldens before committing the new ``.npz`` files:

    PYTHONPATH=src python tools/regen_goldens.py            # all goldens
    PYTHONPATH=src python tools/regen_goldens.py --only antarctica

Each golden stores the inputs that produced it (resolution, layers,
grid) so the diff test can refuse to compare against a stale fixture.
"""

import argparse
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
GOLDEN_DIR = REPO_ROOT / "tests" / "goldens"


def antarctica_golden() -> dict:
    """Coarse Antarctica velocity solve (the tier-1 integration config)."""
    from repro.app import AntarcticaConfig, AntarcticaTest

    config = AntarcticaConfig(resolution_km=300.0, num_layers=5)
    sol = AntarcticaTest.build(config).run()
    return {
        "u": sol.u,
        "residual_norms": np.asarray(sol.newton.residual_norms, dtype=np.float64),
        "mean_velocity": np.float64(sol.mean_velocity),
        "max_velocity": np.float64(sol.max_velocity),
        "surface_mean_velocity": np.float64(sol.surface_mean_velocity),
        "resolution_km": np.float64(config.resolution_km),
        "num_layers": np.int64(config.num_layers),
    }


def greenland_golden() -> dict:
    """Coarse Greenland velocity solve (elongated single-dome geometry)."""
    from repro.app.config import VelocityConfig
    from repro.app.velocity_solver import StokesVelocityProblem
    from repro.mesh import greenland_geometry
    from repro.mesh.extrude import extrude_footprint
    from repro.mesh.planar import masked_quad_footprint

    nx, ny, nlayers = 9, 15, 5
    geo = greenland_geometry()
    fp = masked_quad_footprint(nx, ny, geo.lx, geo.ly, geo.mask)
    mesh = extrude_footprint(fp, geo, nlayers)
    sol = StokesVelocityProblem(mesh, geo, VelocityConfig()).solve()
    return {
        "u": sol.u,
        "residual_norms": np.asarray(sol.newton.residual_norms, dtype=np.float64),
        "mean_velocity": np.float64(sol.mean_velocity),
        "max_velocity": np.float64(sol.max_velocity),
        "surface_mean_velocity": np.float64(sol.surface_mean_velocity),
        "grid": np.array([nx, ny, nlayers], dtype=np.int64),
    }


def table3_golden() -> dict:
    """Table III analogue: baseline/optimized times and speedups per GPU."""
    from repro.gpusim import A100, MI250X_GCD, GPUSimulator
    from repro.kokkos.policy import LaunchBounds

    amd_tuned = LaunchBounds(128, 2)
    gpus, modes, base_t, opt_t = [], [], [], []
    for spec in (A100, MI250X_GCD):
        sim = GPUSimulator(spec)
        for mode in ("jacobian", "residual"):
            b = sim.run(f"baseline-{mode}")
            lb = amd_tuned if spec.vendor == "amd" else None
            o = sim.run(f"optimized-{mode}", launch_bounds=lb)
            gpus.append(spec.name)
            modes.append(mode)
            base_t.append(b.time_s)
            opt_t.append(o.time_s)
    base = np.asarray(base_t)
    opt = np.asarray(opt_t)
    return {
        "gpu": np.array(gpus),
        "mode": np.array(modes),
        "baseline_time_s": base,
        "optimized_time_s": opt,
        "speedup": base / opt,
    }


#: steps per transient golden: long enough to exercise warm starts,
#: forcing and particle drift, short enough for the tier-1 diff test
TRANSIENT_GOLDEN_STEPS = 6

#: every library scenario gets a golden trajectory
TRANSIENT_SCENARIOS = (
    "antarctica-closed",
    "antarctica-retreat",
    "greenland-ramp",
    "shelf-collapse",
)


def transient_golden(name: str) -> dict:
    """Truncated transient trajectory: final state + volume series."""
    from repro.transient import TransientEngine, get_scenario

    scenario = get_scenario(name).with_steps(TRANSIENT_GOLDEN_STEPS)
    result = TransientEngine(scenario).run()
    return {
        "thickness": result.thickness,
        "volumes": np.asarray(result.volumes, dtype=np.float64),
        "times": np.asarray(result.times, dtype=np.float64),
        "dts": np.asarray(result.dts, dtype=np.float64),
        "newton_iterations": np.asarray(result.newton_iterations, dtype=np.int64),
        "particles_xy": result.particles.xy,
        "particles_zeta": result.particles.zeta,
        "particles_active": result.particles.active,
        "scenario_digest": np.asarray(scenario.digest, dtype="U32"),
        "num_steps": np.int64(len(result.dts)),
    }


GOLDENS = {
    "antarctica": antarctica_golden,
    "greenland": greenland_golden,
    "table3": table3_golden,
    **{
        f"transient_{name}": (lambda n=name: transient_golden(n))
        for name in TRANSIENT_SCENARIOS
    },
}


def _report_drift(path: Path, fresh: dict) -> None:
    if not path.exists():
        print(f"  {path.name}: new golden")
        return
    old = np.load(path, allow_pickle=False)
    for key, val in fresh.items():
        if key not in old:
            print(f"  {path.name}:{key}: new field")
            continue
        a, b = np.asarray(old[key]), np.asarray(val)
        if a.shape != b.shape:
            print(f"  {path.name}:{key}: shape {a.shape} -> {b.shape}")
        elif a.dtype.kind in "US" or b.dtype.kind in "US":
            if not np.array_equal(a, b):
                print(f"  {path.name}:{key}: changed")
        else:
            diff = float(np.max(np.abs(a - b))) if a.size else 0.0
            if diff > 0.0:
                print(f"  {path.name}:{key}: max |drift| = {diff:.3e}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only", choices=sorted(GOLDENS), default=None, help="regenerate a single golden"
    )
    parser.add_argument(
        "--transient",
        action="store_true",
        help="regenerate only the transient scenario trajectories",
    )
    args = parser.parse_args(argv)

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    if args.only:
        names = [args.only]
    elif args.transient:
        names = sorted(n for n in GOLDENS if n.startswith("transient_"))
    else:
        names = sorted(GOLDENS)
    for name in names:
        print(f"regenerating {name} ...")
        fresh = GOLDENS[name]()
        path = GOLDEN_DIR / f"{name}.npz"
        _report_drift(path, fresh)
        np.savez_compressed(path, **fresh)
        print(f"  wrote {path.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
