#!/usr/bin/env python
"""Minimal schema check for a ``python -m repro profile`` Chrome trace.

Stdlib-only (CI runs it right after the profile step):

.. code-block:: bash

    python -m repro profile --out /tmp/trace.json
    python tools/check_trace.py /tmp/trace.json

Validates that the file is JSON, ``traceEvents`` is a non-empty list,
every complete ("ph": "X") event carries the required fields with
non-negative microsecond timestamps, and the trace actually contains
the solve structure a profile run promises: ``newton.step`` phase spans
and at least one kernel-category span from the hook registry.

Attribution-era checks (PR 8):

* counter ("ph": "C") events -- convergence series exported alongside
  spans -- must carry a non-negative ``ts`` and a dict ``args`` of
  numeric values;
* span ``args.roofline`` annotations must carry every required numeric
  field (bytes/flops/ai/roof_frac/bw_frac, all finite and
  non-negative) plus a ``basis`` of ``modeled`` or ``wall``;
* stitched SPMD traces must map rank to Chrome pid: any X event whose
  ``args`` carry an integer ``rank`` must live on ``pid == rank``.

Exits nonzero (with a reason on stderr) on any violation.
"""

from __future__ import annotations

import json
import math
import sys

# metadata ("ph": "M") events legitimately omit ts/dur
REQUIRED_FIELDS = ("name", "ph", "pid", "tid")

ROOFLINE_NUMERIC_FIELDS = ("bytes", "flops", "ai", "roof_frac", "bw_frac")
ROOFLINE_BASES = ("modeled", "wall")


def _check_counter(i: int, e: dict, errors: list[str]) -> None:
    ts = e.get("ts")
    if not isinstance(ts, (int, float)) or ts < 0:
        errors.append(f"counter event {i} ({e.get('name')}): bad ts {ts!r}")
    args = e.get("args")
    if not isinstance(args, dict) or not args:
        errors.append(f"counter event {i} ({e.get('name')}): args must be a non-empty dict")
        return
    for k, v in args.items():
        if not isinstance(v, (int, float)) or isinstance(v, bool) or not math.isfinite(v):
            errors.append(
                f"counter event {i} ({e.get('name')}): non-numeric series value {k}={v!r}"
            )


def _check_roofline(i: int, e: dict, errors: list[str]) -> None:
    r = e["args"]["roofline"]
    if not isinstance(r, dict):
        errors.append(f"event {i} ({e.get('name')}): roofline arg is not a dict")
        return
    for f in ROOFLINE_NUMERIC_FIELDS:
        v = r.get(f)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or not math.isfinite(v) or v < 0:
            errors.append(
                f"event {i} ({e.get('name')}): roofline field {f!r} bad value {v!r}"
            )
    if r.get("basis") not in ROOFLINE_BASES:
        errors.append(
            f"event {i} ({e.get('name')}): roofline basis {r.get('basis')!r} "
            f"not in {ROOFLINE_BASES}"
        )


def check_trace(path: str) -> list[str]:
    """Return a list of schema violations (empty = trace is valid)."""
    errors: list[str] = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot load {path}: {exc}"]

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing, not a list, or empty"]

    complete = [e for e in events if e.get("ph") == "X"]
    if not complete:
        errors.append('no complete ("ph": "X") span events')
    for i, e in enumerate(events):
        for f in REQUIRED_FIELDS:
            if f not in e:
                errors.append(f"event {i} missing field {f!r}: {e}")
                break
        if e.get("ph") == "X":
            ts, dur = e.get("ts"), e.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                errors.append(f"event {i} ({e.get('name')}): bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event {i} ({e.get('name')}): bad dur {dur!r}")
            args = e.get("args")
            if isinstance(args, dict):
                rank = args.get("rank")
                if isinstance(rank, int) and not isinstance(rank, bool) and e.get("pid") != rank:
                    errors.append(
                        f"event {i} ({e.get('name')}): rank {rank} on pid "
                        f"{e.get('pid')} -- stitched traces must map rank to pid"
                    )
                if "roofline" in args:
                    _check_roofline(i, e, errors)
        elif e.get("ph") == "C":
            _check_counter(i, e, errors)
        if len(errors) >= 20:
            errors.append("... (further errors suppressed)")
            break

    names = {e.get("name") for e in complete}
    cats = {e.get("cat") for e in complete}
    if "newton.step" not in names:
        errors.append(f"no newton.step spans in trace (names: {sorted(names)[:10]}...)")
    if "velocity.solve" not in names:
        errors.append("no velocity.solve span in trace")
    if "kernel" not in cats:
        errors.append(f"no kernel-category spans in trace (cats: {sorted(map(str, cats))})")
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: python tools/check_trace.py <trace.json>", file=sys.stderr)
        return 2
    errors = check_trace(argv[1])
    if errors:
        for e in errors:
            print(f"check_trace: {e}", file=sys.stderr)
        return 1
    with open(argv[1]) as f:
        n = len(json.load(f)["traceEvents"])
    print(f"check_trace: OK ({n} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
