#!/usr/bin/env python
"""Perf-trajectory gate: diff ``BENCH_solver.json`` against a baseline.

Stdlib-only (CI runs it right after the bench step):

.. code-block:: bash

    PYTHONPATH=src python benchmarks/bench_solver_hotpath.py
    python tools/check_bench.py BENCH_solver.baseline.json BENCH_solver.json

The gate contract mirrors the artifact layout (DESIGN.md section 14):

- every numeric leaf under ``"deterministic"`` is a reproducible,
  lower-is-better signal (GMRES iterations, matvec counts, modeled HBM
  bytes, evaluator sweep counts).  A value that grows beyond
  ``--rtol`` (default 5%) over the baseline is a **hard failure** --
  these numbers do not depend on the machine, so a regression is a real
  algorithmic change, not noise;
- every numeric leaf under ``"advisory"`` is wall-clock or derived from
  it.  Drift beyond ``--wall-drift`` (default 25%) prints a **warning**
  but never fails the gate -- CI runners are too noisy to hard-gate
  seconds;
- a ``schema_version`` mismatch between baseline and candidate is an
  explicit error (re-commit the baseline after changing the layout, do
  not let the diff silently skip fields).

Missing-from-candidate deterministic leaves fail (a signal silently
disappearing is how regressions hide); new leaves only in the candidate
are reported but pass (the next baseline commit picks them up).

``--selftest`` runs the built-in negative control: a synthetic baseline
against (a) an identical copy (must pass), (b) a copy with one
deterministic counter inflated 10% (must fail), and (c) a copy with
wall seconds inflated 30% (must pass with a warning).  The CI job runs
this before the real diff so a broken gate cannot quietly wave
regressions through.
"""

from __future__ import annotations

import argparse
import copy
import json
import math
import sys

#: growth tolerance for deterministic lower-is-better signals.  Small but
#: nonzero: modeled bytes scale with iteration counts that can shift by
#: one restart cycle on legitimate rounding-level changes.
DEFAULT_RTOL = 0.05

#: advisory wall-clock drift that triggers a warning
DEFAULT_WALL_DRIFT = 0.25


def _numeric_leaves(node, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts to {dotted.path: float}; ignore non-numbers."""
    out: dict[str, float] = {}
    if isinstance(node, dict):
        for key in sorted(node):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_numeric_leaves(node[key], path))
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)) and math.isfinite(node):
        out[prefix] = float(node)
    return out


def _rel_growth(base: float, cand: float) -> float:
    """Relative growth of a lower-is-better signal (0 when cand <= base)."""
    if cand <= base:
        return 0.0
    if base == 0.0:
        return math.inf
    return (cand - base) / abs(base)


def compare(
    baseline: dict,
    candidate: dict,
    rtol: float = DEFAULT_RTOL,
    wall_drift: float = DEFAULT_WALL_DRIFT,
) -> tuple[list[str], list[str]]:
    """Diff two trajectory documents.

    Returns ``(errors, warnings)``: any error fails the gate, warnings
    are printed but pass.
    """
    errors: list[str] = []
    warnings: list[str] = []

    for doc, label in ((baseline, "baseline"), (candidate, "candidate")):
        if not isinstance(doc.get("deterministic"), dict):
            errors.append(f'{label} has no "deterministic" section')
    if errors:
        return errors, warnings

    bv = baseline.get("schema_version")
    cv = candidate.get("schema_version")
    if bv != cv:
        errors.append(
            f"schema_version mismatch: baseline {bv!r} vs candidate {cv!r} "
            "(re-commit the baseline after changing the artifact layout)"
        )
        return errors, warnings

    base_det = _numeric_leaves(baseline["deterministic"])
    cand_det = _numeric_leaves(candidate["deterministic"])
    for path, base in base_det.items():
        if path not in cand_det:
            errors.append(f"deterministic.{path}: present in baseline, missing from candidate")
            continue
        cand = cand_det[path]
        growth = _rel_growth(base, cand)
        if growth > rtol:
            errors.append(
                f"deterministic.{path}: {base:g} -> {cand:g} "
                f"(+{growth:.1%}, tolerance {rtol:.0%})"
            )
    for path in sorted(set(cand_det) - set(base_det)):
        warnings.append(
            f"deterministic.{path}: new signal (={cand_det[path]:g}), "
            "not in baseline; commit a fresh baseline to start gating it"
        )

    base_adv = _numeric_leaves(baseline.get("advisory", {}))
    cand_adv = _numeric_leaves(candidate.get("advisory", {}))
    for path, base in base_adv.items():
        if path not in cand_adv:
            warnings.append(f"advisory.{path}: missing from candidate")
            continue
        cand = cand_adv[path]
        if base > 0.0 and abs(cand - base) / base > wall_drift:
            warnings.append(
                f"advisory.{path}: {base:.3g} -> {cand:.3g} "
                f"({(cand - base) / base:+.0%} wall drift, advisory only)"
            )
    return errors, warnings


def _load(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: top level is not a JSON object")
    return doc


# ----------------------------------------------------------------------
# negative control

_SELFTEST_BASELINE = {
    "bench": "solver_hotpath",
    "schema_version": 1,
    "deterministic": {
        "gmres": {
            "assembled": {"gmres_iterations": 400, "matvec_bytes": 2.0e9},
            "matrix-free": {"gmres_iterations": 400, "matvec_bytes": 1.2e9},
        },
        "newton": {"fused": {"eval_sweeps_residual": 17}},
    },
    "advisory": {"fused_solve_seconds": 1.0},
}


def selftest(rtol: float, wall_drift: float) -> int:
    """Prove the gate fires on a planted regression and only then."""
    clean = copy.deepcopy(_SELFTEST_BASELINE)
    errors, warnings = compare(_SELFTEST_BASELINE, clean, rtol, wall_drift)
    if errors or warnings:
        print(f"selftest: identical copy did not pass clean: {errors + warnings}", file=sys.stderr)
        return 1

    planted = copy.deepcopy(_SELFTEST_BASELINE)
    planted["deterministic"]["gmres"]["assembled"]["gmres_iterations"] = 440  # +10%
    errors, _ = compare(_SELFTEST_BASELINE, planted, rtol, wall_drift)
    if not errors:
        print("selftest: planted +10% deterministic regression NOT caught", file=sys.stderr)
        return 1
    if not any("gmres_iterations" in e for e in errors):
        print(f"selftest: wrong signal blamed: {errors}", file=sys.stderr)
        return 1

    slow = copy.deepcopy(_SELFTEST_BASELINE)
    slow["advisory"]["fused_solve_seconds"] = 1.3  # +30% wall
    errors, warnings = compare(_SELFTEST_BASELINE, slow, rtol, wall_drift)
    if errors:
        print(f"selftest: wall drift hard-failed (must only warn): {errors}", file=sys.stderr)
        return 1
    if not warnings:
        print("selftest: +30% wall drift produced no warning", file=sys.stderr)
        return 1

    stale = copy.deepcopy(_SELFTEST_BASELINE)
    stale["schema_version"] = 2
    errors, _ = compare(_SELFTEST_BASELINE, stale, rtol, wall_drift)
    if not any("schema_version" in e for e in errors):
        print("selftest: schema_version mismatch not rejected", file=sys.stderr)
        return 1

    print("check_bench: selftest OK (planted regression caught, wall drift warns)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_bench.py",
        description="diff a BENCH_solver.json perf trajectory against a baseline",
    )
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("candidate", nargs="?", help="freshly generated JSON")
    parser.add_argument(
        "--rtol",
        type=float,
        default=DEFAULT_RTOL,
        help="max relative growth of any deterministic signal (default 0.05)",
    )
    parser.add_argument(
        "--wall-drift",
        type=float,
        default=DEFAULT_WALL_DRIFT,
        help="advisory wall-clock drift that triggers a warning (default 0.25)",
    )
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run the built-in negative control instead of diffing files",
    )
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest(args.rtol, args.wall_drift)
    if not args.baseline or not args.candidate:
        parser.error("baseline and candidate are required unless --selftest")

    try:
        baseline = _load(args.baseline)
        candidate = _load(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"check_bench: cannot load input: {exc}", file=sys.stderr)
        return 2

    errors, warnings = compare(baseline, candidate, args.rtol, args.wall_drift)
    for w in warnings:
        print(f"check_bench: WARNING: {w}")
    if errors:
        for e in errors:
            print(f"check_bench: FAIL: {e}", file=sys.stderr)
        return 1
    n = len(_numeric_leaves(baseline["deterministic"]))
    print(f"check_bench: OK ({n} deterministic signals within {args.rtol:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
