"""Table III: time per call and speedup, baseline vs optimized kernels.

Paper values (for shape comparison; absolute seconds are testbed-specific):

============  ========  =========  ==========  ==========
Kernel        Baseline  Optimized  Baseline    Optimized
              A100      A100       GCD MI250X  GCD MI250X
============  ========  =========  ==========  ==========
Jacobian      1.2e-1    3.6e-2     1.4e-1      5.4e-2
  speedup               3.3x                   2.7x
Residual      3.7e-3    1.7e-3     8.3e-3      2.4e-3
  speedup               2.2x                   3.5x
============  ========  =========  ==========  ==========
"""

import pytest

from repro.perf.report import format_table, write_csv

from conftest import AMD_TUNED

PAPER_SPEEDUPS = {
    ("jacobian", "A100"): 3.3,
    ("jacobian", "MI250X-GCD"): 2.7,
    ("residual", "A100"): 2.2,
    ("residual", "MI250X-GCD"): 3.5,
}


def _table(paper_profiles):
    rows = []
    speedups = {}
    for mode in ("jacobian", "residual"):
        row = [mode.capitalize()]
        for gpu in ("A100", "MI250X-GCD"):
            b = paper_profiles[("baseline", mode, gpu)]
            o = paper_profiles[("optimized", mode, gpu)]
            speedups[(mode, gpu)] = b.time_s / o.time_s
            row += [b.time_s, o.time_s, f"{b.time_s / o.time_s:.2f}x"]
        rows.append(row)
    return rows, speedups


def test_table3_report(paper_profiles, print_once, results_dir, benchmark, sim_a100, problem):
    rows, speedups = _table(paper_profiles)
    headers = [
        "Kernel",
        "Base A100 [s]",
        "Opt A100 [s]",
        "Speedup A100",
        "Base MI250X [s]",
        "Opt MI250X [s]",
        "Speedup MI250X",
    ]
    print_once(
        "table3",
        format_table(headers, rows, title="Table III (reproduced): time per call and speedup")
        + "\n(paper speedups: Jacobian 3.3x/2.7x, Residual 2.2x/3.5x)",
    )
    write_csv(results_dir / "table3_speedups.csv", headers, rows)

    # shape criteria: optimized wins everywhere by ~2-4x
    for key, paper in PAPER_SPEEDUPS.items():
        ours = speedups[key]
        assert 1.8 <= ours <= 4.5, f"{key}: speedup {ours:.2f} outside the paper's band"
        assert abs(ours - paper) / paper < 0.45, f"{key}: {ours:.2f} vs paper {paper}"

    # the benchmarked operation: one full simulator profile of the most
    # expensive kernel (trace -> registers -> cache model -> timing)
    benchmark(sim_a100.run, "baseline-jacobian", problem)


def test_table3_jacobian_dominates(paper_profiles, benchmark):
    """The Jacobian is the most time-consuming kernel on both GPUs."""
    def ratios():
        out = []
        for gpu in ("A100", "MI250X-GCD"):
            for impl in ("baseline", "optimized"):
                j = paper_profiles[(impl, "jacobian", gpu)]
                r = paper_profiles[(impl, "residual", gpu)]
                out.append(j.time_s / r.time_s)
        return out

    for ratio in benchmark(ratios):
        assert ratio > 5.0


def test_table3_numeric_kernels_agree(benchmark):
    """The two implementations the table compares are numerically equal."""
    import numpy as np

    from repro.core import make_stokes_fields, run_kernel

    def fill(f):
        rng = np.random.default_rng(0)
        f.Ugrad.data.val[...] = rng.normal(size=f.Ugrad.shape) * 1e-3
        f.muLandIce.data.val[...] = rng.uniform(1e3, 1e5, f.muLandIce.shape)
        f.force.data.val[...] = rng.normal(size=f.force.shape)
        f.wBF.data[...] = rng.uniform(0.1, 1.0, f.wBF.shape)
        f.wGradBF.data[...] = rng.normal(size=f.wGradBF.shape) * 1e-3
        return f

    fb = fill(make_stokes_fields(512, mode="jacobian"))
    fo = fill(make_stokes_fields(512, mode="jacobian"))
    run_kernel("baseline-jacobian", fb)
    benchmark(run_kernel, "optimized-jacobian", fo)
    assert np.allclose(fb.Residual.values(), fo.Residual.values(), rtol=1e-12)
    assert np.allclose(fb.Residual.data.dx, fo.Residual.data.dx, rtol=1e-12)
