"""Shared fixtures for the paper-reproduction benchmark harness.

Every bench regenerates one table or figure of the paper: it prints the
same rows/series the paper reports (run with ``pytest benchmarks/
--benchmark-only -s`` to see them), writes CSV artifacts under
``benchmarks/results/``, and uses ``pytest-benchmark`` to time the
underlying simulation/computation.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.gpusim import A100, MI250X_GCD, GPUSimulator, ANTARCTICA_16KM
from repro.kokkos.policy import LaunchBounds

RESULTS_DIR = Path(__file__).parent / "results"

#: the tuned MI250X LaunchBounds the paper's Table III optimized numbers use
AMD_TUNED = LaunchBounds(128, 2)

_printed: set[str] = set()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def sim_a100() -> GPUSimulator:
    return GPUSimulator(A100)


@pytest.fixture(scope="session")
def sim_mi250x() -> GPUSimulator:
    return GPUSimulator(MI250X_GCD)


@pytest.fixture(scope="session")
def problem():
    return ANTARCTICA_16KM


@pytest.fixture
def print_once():
    """Print a block exactly once per session (benchmarks re-run bodies)."""

    def _print(key: str, text: str) -> None:
        if key not in _printed:
            _printed.add(key)
            print()
            print(text)

    return _print


def run_paper_profiles(sim_a100, sim_mi250x, problem):
    """The eight (kernel, GPU) profiles behind Tables III/IV and Figs 3/5.

    Optimized kernels on the MI250X use the tuned LaunchBounds, matching
    how the paper quotes its optimized AMD numbers.
    """
    out = {}
    for mode in ("jacobian", "residual"):
        out[("baseline", mode, "A100")] = sim_a100.run(f"baseline-{mode}", problem)
        out[("optimized", mode, "A100")] = sim_a100.run(f"optimized-{mode}", problem)
        out[("baseline", mode, "MI250X-GCD")] = sim_mi250x.run(f"baseline-{mode}", problem)
        out[("optimized", mode, "MI250X-GCD")] = sim_mi250x.run(
            f"optimized-{mode}", problem, launch_bounds=AMD_TUNED
        )
    return out


@pytest.fixture(scope="session")
def paper_profiles(sim_a100, sim_mi250x, problem):
    return run_paper_profiles(sim_a100, sim_mi250x, problem)
