"""Figure 4: illustration of the time-oriented performance portability model.

Fig. 4 is the didactic version of Fig. 5: one observed kernel point, the
architectural bound (HBM-peak diagonal), the application bound (vertical
wall at minimum data movement) and the achievable corner.  This bench
regenerates that illustration's data and asserts the geometric relations
the model is built on.
"""

import numpy as np
import pytest

from repro.gpusim.specs import A100
from repro.perf import TimeOrientedModel, theoretical_minimum, format_table, ascii_scatter, write_csv


def test_fig4_illustration(paper_profiles, problem, print_once, results_dir, benchmark):
    th = theoretical_minimum("optimized-jacobian", problem.num_cells)
    m = TimeOrientedModel(kernel="jacobian", theoretical=th, peak_bandwidth=A100.hbm_bytes_per_s)
    observed = m.add_profile(paper_profiles[("baseline", "jacobian", "A100")], label="Observed")
    wall_b, wall_t = m.achievable_point

    rows = [
        ["Observed", observed.gbytes, observed.time_ms],
        ["Achievable", wall_b / 1e9, wall_t * 1e3],
        ["Architectural bound @ observed bytes", observed.gbytes, float(m.architectural_bound_time(observed.bytes_moved)) * 1e3],
        ["Application wall [GB]", wall_b / 1e9, "-"],
    ]
    headers = ["item", "GBytes", "time [ms]"]
    write_csv(results_dir / "fig4_model_illustration.csv", headers, rows)

    xs, ts, wall = m.series()
    plot = ascii_scatter(
        [(observed.bytes_moved, observed.time_s, "X"), (wall_b, wall_t, "*")],
        lines=[
            (xs[0], float(ts[0]), xs[-1], float(ts[-1]), "/"),
            (wall, float(ts[0]) * 0.5, wall, float(ts[-1]) * 2.0, "|"),
        ],
        xlabel="GBytes moved (HBM)",
        ylabel="time per invocation [s]",
    )
    print_once(
        "fig4",
        "Figure 4 (reproduced) -- model illustration\n"
        + format_table(headers, rows)
        + "\n(X = observed kernel, * = achievable, / = architectural bound, | = application wall)\n"
        + plot,
    )

    # geometric invariants of the model
    assert observed.bytes_moved >= wall_b  # right of the wall
    assert observed.time_s >= float(m.architectural_bound_time(observed.bytes_moved))  # above diagonal
    # the achievable corner is the intersection of the two bounds
    assert wall_t == pytest.approx(wall_b / A100.hbm_bytes_per_s)
    # efficiencies are the coordinate ratios to the bounds
    assert m.efficiency_data_movement(observed) == pytest.approx(wall_b / observed.bytes_moved)
    assert m.efficiency_time(observed) == pytest.approx(wall_t / observed.time_s)

    benchmark(m.series)


def test_fig4_bound_monotonicity(problem, benchmark):
    """The architectural bound is linear; halving bytes halves the bound."""
    th = benchmark(theoretical_minimum, "optimized-residual", problem.num_cells)
    m = TimeOrientedModel(kernel="residual", theoretical=th, peak_bandwidth=A100.hbm_bytes_per_s)
    t1 = float(m.architectural_bound_time(2.0e9))
    t2 = float(m.architectural_bound_time(1.0e9))
    assert t1 == pytest.approx(2 * t2)
