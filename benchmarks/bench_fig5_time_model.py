"""Figure 5: the time-oriented performance portability plane.

For each kernel (Jacobian, Residual): the eight observed points (baseline
/optimized x A100/MI250X) in the (GBytes moved, time per invocation)
plane, the common architectural diagonal, and the application wall at
the theoretical minimum data movement.  Shape criteria: no point beats a
bound; optimization moves every point down-left toward the achievable
corner; the Jacobian wall sits ~17x to the right of the Residual wall.
"""

import pytest

from repro.gpusim.specs import A100
from repro.perf import TimeOrientedModel, theoretical_minimum, format_table, ascii_scatter, write_csv


def _model(paper_profiles, problem, mode):
    th = theoretical_minimum(f"optimized-{mode}", problem.num_cells)
    m = TimeOrientedModel(kernel=mode, theoretical=th, peak_bandwidth=A100.hbm_bytes_per_s)
    for impl in ("baseline", "optimized"):
        for gpu in ("A100", "MI250X-GCD"):
            m.add_profile(paper_profiles[(impl, mode, gpu)], label=f"{impl}@{gpu}")
    return m


@pytest.mark.parametrize("mode", ["jacobian", "residual"])
def test_fig5_time_model(mode, paper_profiles, problem, print_once, results_dir, benchmark):
    m = _model(paper_profiles, problem, mode)
    m.validate()  # no observed point may beat either bound

    wall_b, wall_t = m.achievable_point
    rows = [["achievable (bound)", wall_b / 1e9, wall_t * 1e3, "-", "-"]]
    for p in m.points:
        rows.append(
            [
                p.label,
                p.gbytes,
                p.time_ms,
                f"{m.efficiency_time(p):.0%}",
                f"{m.efficiency_data_movement(p):.0%}",
            ]
        )
    headers = ["point", "GBytes moved", "time/invocation [ms]", "e_time", "e_DM"]
    write_csv(results_dir / f"fig5_time_model_{mode}.csv", headers, rows)

    marks = {"baseline@A100": "B", "optimized@A100": "O", "baseline@MI250X-GCD": "b", "optimized@MI250X-GCD": "o"}
    xs, ts, wall = m.series()
    plot = ascii_scatter(
        [(p.bytes_moved, p.time_s, marks[p.label]) for p in m.points]
        + [(wall_b, wall_t, "*")],
        lines=[
            (xs[0], float(ts[0]), xs[-1], float(ts[-1]), "/"),  # architectural bound
            (wall, float(ts[0]) * 0.5, wall, float(ts[-1]) * 2.0, "|"),  # application wall
        ],
        xlabel="HBM bytes moved",
        ylabel="time per invocation [s]",
    )
    print_once(
        f"fig5-{mode}",
        f"Figure 5 (reproduced) -- time-oriented model, {mode} kernel\n"
        + format_table(headers, rows)
        + "\n(B/O = A100 baseline/optimized, b/o = MI250X, * = achievable corner)\n"
        + plot,
    )

    # optimization moves toward the achievable corner on both GPUs
    for gpu in ("A100", "MI250X-GCD"):
        b = next(p for p in m.points if p.label == f"baseline@{gpu}")
        o = next(p for p in m.points if p.label == f"optimized@{gpu}")
        assert o.time_s < b.time_s
        assert o.bytes_moved <= b.bytes_moved * (1 + 1e-12)
        assert m.efficiency_data_movement(o) >= m.efficiency_data_movement(b)

    benchmark(_model, paper_profiles, problem, mode)


def test_fig5_jacobian_wall_17x_residual(problem, benchmark):
    """The Jacobian's application wall sits ~17x right of the Residual's."""
    tj = benchmark(theoretical_minimum, "optimized-jacobian", problem.num_cells)
    tr = theoretical_minimum("optimized-residual", problem.num_cells)
    assert tj.total_bytes / tr.total_bytes == pytest.approx(17.0)


def test_fig5_optimized_near_wall(paper_profiles, problem, benchmark):
    """Optimized implementations sit close to the application bound."""
    benchmark(_model, paper_profiles, problem, "residual")
    for mode in ("jacobian", "residual"):
        m = _model(paper_profiles, problem, mode)
        for p in m.points:
            if "optimized" in p.label:
                assert m.efficiency_data_movement(p) > 0.8, p.label
