"""Extension bench: projected multi-GPU scaling of the velocity solver.

The paper's future work announces scalability studies; this bench uses
the calibrated kernel costs plus a Slingshot-11 communication model to
project weak and strong scaling on both machines.  Sanity criteria:
weak scaling stays above 85% efficiency to 64 GPUs at the paper's
per-GPU load, and strong scaling degrades monotonically as the local
problem shrinks into the latency floor.

The measured-halo benches ground the projections in *real*
decompositions: the synthetic Antarctica footprint is RCB-partitioned
at each GPU count, per-rank ghost-column counts and exchange bytes are
measured with :func:`repro.mesh.partition.halo_statistics`, and the
measured-vs-analytic ghost ratio quantifies how far the ``4 sqrt(A)``
patch estimate sits from the partitioner's actual halos
(``results/scaling_measured_halo.json``).
"""

import json

import pytest

from repro.app.scaling import ScalingModel
from repro.gpusim import A100, MI250X_GCD
from repro.mesh import antarctica_geometry
from repro.mesh.partition import halo_statistics, partition_footprint
from repro.mesh.planar import masked_quad_footprint
from repro.perf.report import format_table, write_csv

GPU_COUNTS = [1, 2, 4, 8, 16, 32, 64]
#: partition counts for the measured-halo benches ({1, 2, 4, 8} required)
PART_COUNTS = [1, 2, 4, 8, 16]


def _antarctica_footprint(resolution_km=64.0):
    """The paper-test footprint at a partitioning-friendly resolution."""
    geo = antarctica_geometry(resolution_km)
    res_m = resolution_km * 1.0e3
    nx = max(4, int(round(geo.lx / res_m)))
    ny = max(4, int(round(geo.ly / res_m)))
    return masked_quad_footprint(nx, ny, geo.lx, geo.ly, geo.mask)


@pytest.mark.parametrize("spec", [A100, MI250X_GCD], ids=lambda s: s.name)
def test_weak_scaling(spec, print_once, results_dir, benchmark):
    model = ScalingModel(spec)
    pts = model.weak_scaling(cells_per_gpu=256_000, gpu_counts=GPU_COUNTS)
    eff = ScalingModel.efficiency(pts, "weak")
    rows = [
        [p.num_gpus, p.cells_per_gpu, p.t_step, f"{p.communication_fraction:.1%}", f"{e:.1%}"]
        for p, e in zip(pts, eff)
    ]
    headers = ["GPUs", "cells/GPU", "t/Newton step [s]", "comm frac", "weak eff"]
    print_once(
        f"weak-{spec.name}",
        format_table(headers, rows, title=f"Projected weak scaling on {spec.name} (256K cells/GPU)"),
    )
    write_csv(results_dir / f"scaling_weak_{spec.name}.csv", headers, rows)

    assert eff[0] == pytest.approx(1.0)
    assert all(e > 0.85 for e in eff)  # kernel-dominated at this load
    assert all(a >= b - 1e-12 for a, b in zip(eff, eff[1:]))  # monotone decay

    benchmark(model.weak_scaling, 256_000, [1, 16])


def test_strong_scaling_hits_latency_floor(print_once, results_dir, benchmark):
    model = ScalingModel(A100)
    pts = benchmark(model.strong_scaling, 1_024_000, GPU_COUNTS)
    eff = ScalingModel.efficiency(pts, "strong")
    rows = [[p.num_gpus, p.cells_per_gpu, p.t_step, f"{e:.1%}"] for p, e in zip(pts, eff)]
    headers = ["GPUs", "cells/GPU", "t/Newton step [s]", "strong eff"]
    print_once(
        "strong-A100",
        format_table(headers, rows, title="Projected strong scaling on A100 (1.02M cells total)"),
    )
    write_csv(results_dir / "scaling_strong_A100.csv", headers, rows)

    # total time per step decreases, but efficiency falls off
    steps = [p.t_step for p in pts]
    assert steps[-1] < steps[0]
    assert eff[-1] < 0.9
    # communication share grows as the local problem shrinks
    assert pts[-1].communication_fraction > pts[1].communication_fraction


def test_measured_halo_traffic_json(print_once, results_dir, benchmark):
    """Measured per-rank halo bytes from real RCB partitions -> JSON.

    Partitions the Antarctica footprint at {1, 2, 4, 8, 16} parts and
    records what each rank actually receives on a ghost refresh --
    measured, not the 4 sqrt(A) estimate -- alongside the
    measured-vs-analytic ghost-count ratio.
    """
    fp = _antarctica_footprint()
    model = ScalingModel(A100)
    nz = model.levels - 1

    record = {
        "footprint": {"columns": fp.num_nodes, "cells_2d": fp.num_elems},
        "levels": model.levels,
        "ndof": 2,
        "parts": [],
    }
    rows = []
    for p in PART_COUNTS:
        stats = halo_statistics(partition_footprint(fp, p))
        cells_per_rank = max(stats.owned_elems) * nz
        analytic = model.ghost_columns(cells_per_rank)
        ratio = stats.max_ghost_nodes / analytic if p > 1 else None
        entry = {
            "nparts": p,
            "cells_per_rank_max": cells_per_rank,
            "elem_imbalance": stats.elem_imbalance,
            "ghost_columns_per_rank": list(stats.ghost_nodes),
            "send_columns_per_rank": list(stats.send_nodes),
            "neighbors_per_rank": list(stats.neighbor_counts),
            "halo_bytes_per_rank": stats.ghost_bytes_per_exchange(model.levels),
            "ghost_columns_analytic": analytic if p > 1 else 0.0,
            "measured_vs_analytic_ghost_ratio": ratio,
        }
        record["parts"].append(entry)
        rows.append(
            [
                p,
                cells_per_rank,
                stats.max_ghost_nodes,
                max(entry["halo_bytes_per_rank"]),
                f"{analytic:.1f}" if p > 1 else "-",
                f"{ratio:.2f}" if ratio is not None else "-",
            ]
        )

    out = results_dir / "scaling_measured_halo.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    headers = ["parts", "cells/rank", "ghost cols (max)", "halo B/rank (max)", "analytic cols", "meas/analytic"]
    print_once(
        "measured-halo",
        format_table(headers, rows, title="Measured halo traffic on Antarctica footprint (RCB)"),
    )

    by_parts = {e["nparts"]: e for e in record["parts"]}
    assert {1, 2, 4, 8} <= set(by_parts)  # required part counts present
    for p, e in by_parts.items():
        assert len(e["halo_bytes_per_rank"]) == p
        if p == 1:
            assert e["halo_bytes_per_rank"] == [0]
        else:
            assert max(e["halo_bytes_per_rank"]) > 0
            assert 0.1 < e["measured_vs_analytic_ghost_ratio"] < 5.0
    assert json.loads(out.read_text())["parts"]  # round-trips

    benchmark(lambda: halo_statistics(partition_footprint(fp, 8)))


def test_partitioned_strong_scaling_measured(print_once, results_dir, benchmark):
    """Strong scaling projected from measured decompositions, not splits."""
    fp = _antarctica_footprint()
    model = ScalingModel(A100)
    pts = benchmark(model.partitioned_strong_scaling, fp, PART_COUNTS)
    rows = [
        [
            p.num_gpus,
            p.cells_per_gpu,
            f"{p.ghost_columns:.0f}" if p.ghost_columns is not None else "-",
            p.t_step,
            f"{p.communication_fraction:.1%}",
            p.halo_source,
        ]
        for p in pts
    ]
    headers = ["GPUs", "cells/GPU (max)", "ghost cols", "t/Newton step [s]", "comm frac", "halo"]
    print_once(
        "strong-measured-A100",
        format_table(headers, rows, title="Strong scaling from measured RCB partitions (A100)"),
    )
    write_csv(results_dir / "scaling_strong_measured_A100.csv", headers, rows)

    assert all(p.halo_source == "measured" for p in pts)
    assert pts[-1].t_step < pts[0].t_step
    assert all(p.ghost_columns > 0 for p in pts if p.num_gpus > 1)
    # critical-rank load never below the uniform split
    for p in pts:
        assert p.cells_per_gpu * p.num_gpus >= fp.num_elems * (model.levels - 1)


def test_baseline_kernels_worsen_scaling_economics(benchmark):
    """Slower kernels hide communication: baseline 'scales' better but is slower."""
    opt = ScalingModel(A100, kernel_impl="optimized")
    base = ScalingModel(A100, kernel_impl="baseline")
    p_opt = benchmark(lambda: opt.weak_scaling(256_000, [64])[0])
    p_base = base.weak_scaling(256_000, [64])[0]
    assert p_base.t_step > p_opt.t_step  # optimization wins outright
    assert p_base.communication_fraction < p_opt.communication_fraction
