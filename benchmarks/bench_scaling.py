"""Extension bench: projected multi-GPU scaling of the velocity solver.

The paper's future work announces scalability studies; this bench uses
the calibrated kernel costs plus a Slingshot-11 communication model to
project weak and strong scaling on both machines.  Sanity criteria:
weak scaling stays above 85% efficiency to 64 GPUs at the paper's
per-GPU load, and strong scaling degrades monotonically as the local
problem shrinks into the latency floor.
"""

import pytest

from repro.app.scaling import ScalingModel
from repro.gpusim import A100, MI250X_GCD
from repro.perf.report import format_table, write_csv

GPU_COUNTS = [1, 2, 4, 8, 16, 32, 64]


@pytest.mark.parametrize("spec", [A100, MI250X_GCD], ids=lambda s: s.name)
def test_weak_scaling(spec, print_once, results_dir, benchmark):
    model = ScalingModel(spec)
    pts = model.weak_scaling(cells_per_gpu=256_000, gpu_counts=GPU_COUNTS)
    eff = ScalingModel.efficiency(pts, "weak")
    rows = [
        [p.num_gpus, p.cells_per_gpu, p.t_step, f"{p.communication_fraction:.1%}", f"{e:.1%}"]
        for p, e in zip(pts, eff)
    ]
    headers = ["GPUs", "cells/GPU", "t/Newton step [s]", "comm frac", "weak eff"]
    print_once(
        f"weak-{spec.name}",
        format_table(headers, rows, title=f"Projected weak scaling on {spec.name} (256K cells/GPU)"),
    )
    write_csv(results_dir / f"scaling_weak_{spec.name}.csv", headers, rows)

    assert eff[0] == pytest.approx(1.0)
    assert all(e > 0.85 for e in eff)  # kernel-dominated at this load
    assert all(a >= b - 1e-12 for a, b in zip(eff, eff[1:]))  # monotone decay

    benchmark(model.weak_scaling, 256_000, [1, 16])


def test_strong_scaling_hits_latency_floor(print_once, results_dir, benchmark):
    model = ScalingModel(A100)
    pts = benchmark(model.strong_scaling, 1_024_000, GPU_COUNTS)
    eff = ScalingModel.efficiency(pts, "strong")
    rows = [[p.num_gpus, p.cells_per_gpu, p.t_step, f"{e:.1%}"] for p, e in zip(pts, eff)]
    headers = ["GPUs", "cells/GPU", "t/Newton step [s]", "strong eff"]
    print_once(
        "strong-A100",
        format_table(headers, rows, title="Projected strong scaling on A100 (1.02M cells total)"),
    )
    write_csv(results_dir / "scaling_strong_A100.csv", headers, rows)

    # total time per step decreases, but efficiency falls off
    steps = [p.t_step for p in pts]
    assert steps[-1] < steps[0]
    assert eff[-1] < 0.9
    # communication share grows as the local problem shrinks
    assert pts[-1].communication_fraction > pts[1].communication_fraction


def test_baseline_kernels_worsen_scaling_economics(benchmark):
    """Slower kernels hide communication: baseline 'scales' better but is slower."""
    opt = ScalingModel(A100, kernel_impl="optimized")
    base = ScalingModel(A100, kernel_impl="baseline")
    p_opt = benchmark(lambda: opt.weak_scaling(256_000, [64])[0])
    p_base = base.weak_scaling(256_000, [64])[0]
    assert p_base.t_step > p_opt.t_step  # optimization wins outright
    assert p_base.communication_fraction < p_opt.communication_fraction
