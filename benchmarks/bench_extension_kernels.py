"""Extension: the portability model applied to several kernels.

The paper's future work: "We will use our performance portability model
to evaluate several kernels."  This bench places three velocity-solver
kernels in the time-oriented plane on both GPUs -- the Jacobian and
Residual of the paper plus the ViscosityFO kernel that precedes them in
the evaluation chain -- and reports e_time/e_DM/Phi per kernel.
"""

import pytest

from repro.gpusim import A100, MI250X_GCD, GPUSimulator, ANTARCTICA_16KM
from repro.gpusim.specs import ALL_GPUS
from repro.perf import theoretical_minimum, performance_portability, format_table, write_csv

from conftest import AMD_TUNED

KERNELS = [
    ("optimized-jacobian", "jacobian"),
    ("optimized-residual", "residual"),
    ("viscosity-residual", "viscosity"),
]


def test_portability_of_several_kernels(print_once, results_dir, benchmark, sim_a100, sim_mi250x):
    rows = []
    phis = {}
    for key, label in KERNELS:
        th = theoretical_minimum(key, ANTARCTICA_16KM.num_cells)
        effs_t, effs_d = [], []
        for gpu, sim in (("A100", sim_a100), ("MI250X-GCD", sim_mi250x)):
            lb = AMD_TUNED if (gpu == "MI250X-GCD" and key.startswith("optimized")) else None
            p = sim.run(key, ANTARCTICA_16KM, launch_bounds=lb)
            peak = ALL_GPUS[gpu].hbm_bytes_per_s
            effs_t.append(min(1.0, th.min_time_s(peak) / p.time_s))
            effs_d.append(min(1.0, th.total_bytes / p.hbm_bytes))
        phi_t = performance_portability(effs_t)
        phi_d = performance_portability(effs_d)
        phis[label] = (phi_t, phi_d)
        rows.append(
            [label, f"{effs_t[0]:.0%}/{effs_t[1]:.0%}", f"{phi_t:.0%}",
             f"{effs_d[0]:.0%}/{effs_d[1]:.0%}", f"{phi_d:.0%}"]
        )
    headers = ["kernel", "e_time A100/MI", "Phi(time)", "e_DM A100/MI", "Phi(DM)"]
    print_once(
        "ext-kernels",
        format_table(headers, rows, title="Extension -- portability model over several kernels"),
    )
    write_csv(results_dir / "extension_kernels_portability.csv", headers, rows)

    # the streaming viscosity kernel should sit on the application wall
    assert phis["viscosity"][1] > 0.99
    # every optimized kernel reaches >= 80% data-movement portability
    for label, (pt, pd) in phis.items():
        assert pd > 0.80, label

    benchmark(sim_a100.run, "viscosity-residual", ANTARCTICA_16KM)


def test_viscosity_kernel_is_minor_cost(sim_a100, benchmark):
    """The Jacobian dominates; the chain's other kernels are cheap."""
    j = sim_a100.run("optimized-jacobian", ANTARCTICA_16KM)
    v = benchmark(sim_a100.run, "viscosity-residual", ANTARCTICA_16KM)
    assert v.time_s < 0.1 * j.time_s
