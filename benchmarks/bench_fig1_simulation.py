"""Figure 1: Antarctica simulation snapshot with GPU-solved velocities.

The paper's Fig. 1 shows a MALI production run's surface speed field.
This bench runs the full synthetic-Antarctica velocity solve (coarse
resolution -- pure-Python numerics), writes the surface speed field as
CSV, and renders an ASCII speed map.  Assertions check the
glaciological shape: slow divide, fast margins, outward flow.
"""

import numpy as np
import pytest

from repro.app import AntarcticaConfig, AntarcticaTest
from repro.perf.report import write_csv

CFG = AntarcticaConfig(resolution_km=300.0, num_layers=5)


@pytest.fixture(scope="module")
def solved():
    test = AntarcticaTest.build(CFG)
    sol = test.run()
    return test, sol


def _speed_map(test, sol, width=60, height=26):
    mesh = test.mesh
    dm = test.problem.dofmap
    u = dm.nodal_view(sol.u)
    surf = mesh.surface_nodes()
    xy = mesh.coords[surf, :2]
    speed = np.hypot(u[surf, 0], u[surf, 1])

    geo = test.geometry
    grid = [[" "] * width for _ in range(height)]
    ramp = " .:-=+*#%@"
    smax = speed.max() or 1.0
    for (x, y), s in zip(xy, speed):
        cx = int(x / geo.lx * (width - 1))
        cy = int(y / geo.ly * (height - 1))
        level = int(min(0.999, s / smax) * (len(ramp) - 1))
        grid[height - 1 - cy][cx] = ramp[max(1, level)]
    return "\n".join("".join(r) for r in grid), xy, speed


def test_fig1_snapshot(solved, print_once, results_dir, benchmark):
    test, sol = solved
    plot, xy, speed = _speed_map(test, sol)
    write_csv(
        results_dir / "fig1_surface_speed.csv",
        ["x_m", "y_m", "speed_m_per_yr"],
        [[x, y, s] for (x, y), s in zip(xy, speed)],
    )
    print_once(
        "fig1",
        "Figure 1 (reproduced) -- synthetic Antarctica surface speed [m/yr]\n"
        + plot
        + f"\nmax surface speed: {speed.max():.1f} m/yr, mean: {speed.mean():.1f} m/yr"
        + f"\nmean |u| (regression value): {sol.mean_velocity:.6f} m/yr",
    )

    # glaciological shape: the divide is slow, the margin zone fast
    geo = test.geometry
    cx, cy = geo.center
    r = np.hypot(xy[:, 0] - cx, xy[:, 1] - cy)
    inner = speed[r < 0.25 * geo.radius]
    outer = speed[(r > 0.6 * geo.radius) & (r < 1.0 * geo.radius)]
    assert inner.mean() < 0.5 * outer.mean()

    # the benchmarked operation: one residual assembly through the
    # evaluator DAG with the paper's optimized kernel
    u = sol.u
    benchmark(test.problem.residual, u)


def test_fig1_regression_check(solved, benchmark):
    """Section III-B acceptance: mean solution vs reference at 1e-5."""
    test, sol = solved
    passed, ref = benchmark(test.check, sol)
    assert ref is not None and passed


def test_fig1_newton_history(solved, benchmark):
    test, sol = solved
    norms = benchmark(lambda: sol.newton.residual_norms)
    assert len(norms) == 9  # initial + 8 steps
    assert norms[-1] < 1e-4 * norms[0]
