"""Table II: LaunchBounds sweep of the optimized kernels on MI250X.

Reproduces time per call, Architectural/Accumulation VGPRs and speedup
vs. the default for LaunchBounds in {default, (128,2), (128,4), (256,2),
(1024,2)}.  The VGPR allocations must match the paper's table exactly
(they are outputs of the CDNA2 allocation model); the best configs must
be (128,2)/(256,2) with speedups near 1.54x (Jacobian) / 1.17x
(Residual).
"""

import pytest

from repro.core.launch import TABLE2_LAUNCH_CONFIGS, default_launch_bounds
from repro.perf.report import format_table, write_csv

PAPER_VGPRS = {
    "jacobian": {
        "default": (128, 0),
        "128,2": (128, 128),
        "128,4": (128, 0),
        "256,2": (128, 128),
        "1024,2": (128, 0),
    },
    "residual": {
        "default": (84, 4),
        "128,2": (128, 0),
        "128,4": (84, 4),
        "256,2": (128, 0),
        "1024,2": (84, 4),
    },
}

PAPER_BEST_SPEEDUP = {"jacobian": 1.54, "residual": 1.17}


def _sweep(sim, mode, problem):
    rows = []
    profiles = {}
    skipped = []
    for lb in TABLE2_LAUNCH_CONFIGS:
        eff = lb if lb.explicit else default_launch_bounds(mode)
        if eff.max_threads > sim.spec.max_threads_per_cu:
            # unlaunchable on real hardware (the simulator now rejects
            # it too); flag instead of reporting a fictitious timing
            skipped.append(str(lb))
            continue
        p = sim.run(f"optimized-{mode}", problem, launch_bounds=eff)
        profiles[str(lb)] = p
    if "default" not in profiles:
        # the default config itself was unlaunchable on this spec: there
        # is no baseline to normalize speedups against, so say which
        # machine model is at fault instead of KeyError-ing below
        pytest.skip(
            f"default launch bounds for {mode!r} "
            f"({default_launch_bounds(mode).max_threads} threads) are "
            f"unlaunchable on {sim.spec.name} "
            f"(max_threads_per_cu={sim.spec.max_threads_per_cu}); "
            f"skipped configs: {skipped}"
        )
    base_t = profiles["default"].time_s
    for lb in TABLE2_LAUNCH_CONFIGS:
        key = str(lb)
        if key in skipped:
            rows.append([mode.capitalize(), key, "unlaunchable", "-", "-", "skipped"])
            continue
        p = profiles[key]
        rows.append(
            [
                mode.capitalize(),
                key,
                p.time_s,
                p.arch_vgprs,
                p.accum_vgprs,
                f"{base_t / p.time_s:.2f}x",
            ]
        )
    return rows, profiles


def test_table2_report(sim_mi250x, problem, print_once, results_dir, benchmark):
    all_rows = []
    for mode in ("jacobian", "residual"):
        rows, profiles = _sweep(sim_mi250x, mode, problem)
        all_rows += rows

        # exact VGPR reproduction of the paper's table
        for key, (arch, accum) in PAPER_VGPRS[mode].items():
            p = profiles[key]
            assert (p.arch_vgprs, p.accum_vgprs) == (arch, accum), f"{mode} {key}"

        # best configs and speedup magnitude
        base_t = profiles["default"].time_s
        best = PAPER_BEST_SPEEDUP[mode]
        for key in ("128,2", "256,2"):
            sp = base_t / profiles[key].time_s
            assert abs(sp - best) / best < 0.25, f"{mode} {key}: {sp:.2f} vs paper {best}"
        # (1024,2) is no better than the default (paper: 0.93-0.98x)
        assert profiles["1024,2"].time_s >= base_t * 0.99

    headers = ["Kernel", "<MaxThreads,MinBlocks>", "time [s]", "Arch. VGPRs", "Accum. VGPRs", "speedup"]
    print_once(
        "table2",
        format_table(headers, all_rows, title="Table II (reproduced): LaunchBounds on MI250X GCD")
        + "\n(paper best: 128,2 / 256,2 with 1.54x Jacobian, 1.17x Residual; VGPRs match exactly)",
    )
    write_csv(results_dir / "table2_launchbounds.csv", headers, all_rows)

    benchmark(sim_mi250x.run, "optimized-jacobian", problem)


def test_sweep_names_spec_when_default_unlaunchable():
    """A spec too small for the *default* bounds skips with a reason.

    Regression test: ``_sweep`` used to index ``profiles["default"]``
    unconditionally after the skip loop, so a machine model whose
    ``max_threads_per_cu`` cannot launch the default config (1024
    threads for the residual) died with a bare ``KeyError`` instead of
    reporting which spec was unlaunchable.
    """
    from dataclasses import replace

    from repro.gpusim.simulator import GPUSimulator, ProblemSize
    from repro.gpusim.specs import MI250X_GCD

    spec = replace(MI250X_GCD, name="MI250X-LOWTPB", max_threads_per_cu=512)
    sim = GPUSimulator(spec)
    with pytest.raises(pytest.skip.Exception) as excinfo:
        _sweep(sim, "residual", ProblemSize(num_cells=4096))
    msg = str(excinfo.value)
    assert "MI250X-LOWTPB" in msg and "unlaunchable" in msg


def test_table2_agprs_only_with_generous_budget(sim_mi250x, problem, benchmark):
    """The accumulation VGPRs appear exactly when <=2 waves/SIMD are targeted."""
    from repro.kokkos.policy import LaunchBounds

    p_good = benchmark(sim_mi250x.run, "optimized-jacobian", problem, launch_bounds=LaunchBounds(128, 2))
    p_tight = sim_mi250x.run("optimized-jacobian", problem, launch_bounds=LaunchBounds(128, 4))
    assert p_good.accum_vgprs == 128 and p_good.scratch_bytes_per_thread == 0
    assert p_tight.accum_vgprs == 0 and p_tight.scratch_bytes_per_thread > 0
    assert p_good.time_s < p_tight.time_s
