"""Figure 3: rooflines of the four kernels on A100 (left) and MI250X (right).

Regenerates the figure's data series: the bandwidth/FP64 ceilings per
GPU and the (arithmetic intensity, GFLOP/s) point per kernel, written as
CSV and rendered as an ASCII log-log plot.  Shape criteria: every kernel
is memory-bound; optimization raises arithmetic intensity on both GPUs;
the optimized Jacobian approaches the bandwidth ceiling on the A100
(paper: ~90% of peak BW) more closely than on the MI250X (~60%).
"""

import pytest

from repro.gpusim.specs import ALL_GPUS
from repro.perf import RooflineModel, format_table, ascii_scatter, write_csv


def _points(paper_profiles, gpu):
    out = {}
    for (impl, mode, g), p in paper_profiles.items():
        if g == gpu:
            out[f"{impl}-{mode}"] = RooflineModel.point_from_profile(p, f"{impl}-{mode}")
    return out


@pytest.mark.parametrize("gpu", ["A100", "MI250X-GCD"])
def test_fig3_roofline(gpu, paper_profiles, print_once, results_dir, benchmark):
    spec = ALL_GPUS[gpu]
    model = RooflineModel(spec)
    pts = _points(paper_profiles, gpu)

    rows = []
    for name, pt in sorted(pts.items()):
        rows.append(
            [
                name,
                pt.arithmetic_intensity,
                pt.gflops,
                f"{model.fraction_of_roofline(pt):.0%}",
                f"{model.bandwidth_fraction(pt):.0%}",
            ]
        )
    headers = ["kernel", "AI [flop/byte]", "GFLOP/s", "frac roofline", "frac peak BW"]

    ai, gf = model.ceiling_series()
    write_csv(results_dir / f"fig3_roofline_{gpu}.csv", ["ai", "gflops_ceiling"], list(map(list, zip(ai, gf))))
    write_csv(results_dir / f"fig3_points_{gpu}.csv", headers, rows)

    markers = {"baseline-jacobian": "J", "optimized-jacobian": "j", "baseline-residual": "R", "optimized-residual": "r"}
    plot = ascii_scatter(
        [(p.arithmetic_intensity, p.gflops, markers[n]) for n, p in pts.items()],
        lines=[
            (ai[0], float(gf[0]), model.ridge_point, spec.fp64_flops / 1e9, "/"),
            (model.ridge_point, spec.fp64_flops / 1e9, ai[-1], spec.fp64_flops / 1e9, "-"),
        ],
        xlabel="arithmetic intensity [flop/byte]",
        ylabel="GFLOP/s",
    )
    print_once(
        f"fig3-{gpu}",
        f"Figure 3 (reproduced) -- Roofline on {gpu}\n"
        + format_table(headers, rows)
        + "\n(J/j = Jacobian baseline/optimized, R/r = Residual)\n"
        + plot,
    )

    # shape criteria
    for name, pt in pts.items():
        assert model.is_memory_bound(pt), name
    for mode in ("jacobian", "residual"):
        assert (
            pts[f"optimized-{mode}"].arithmetic_intensity
            >= pts[f"baseline-{mode}"].arithmetic_intensity
        )
        assert pts[f"optimized-{mode}"].gflops > pts[f"baseline-{mode}"].gflops

    benchmark(model.ceiling_series)


def test_fig3_cross_gpu_bandwidth_story(paper_profiles, benchmark):
    """A100 optimized kernels run closer to peak BW than MI250X's (Sec. VI)."""
    a = benchmark(_points, paper_profiles, "A100")
    m = _points(paper_profiles, "MI250X-GCD")
    ma, mm = RooflineModel(ALL_GPUS["A100"]), RooflineModel(ALL_GPUS["MI250X-GCD"])
    for mode in ("jacobian", "residual"):
        fa = ma.bandwidth_fraction(a[f"optimized-{mode}"])
        fm = mm.bandwidth_fraction(m[f"optimized-{mode}"])
        assert fa > fm
        assert fa > 0.60  # paper: ~90% on A100
        assert fm > 0.35  # paper: ~60% on MI250X

    # baselines sit below ~40-75% of peak BW (paper: below 40%)
    for mode in ("jacobian", "residual"):
        assert ma.bandwidth_fraction(a[f"baseline-{mode}"]) < 0.75
        assert mm.bandwidth_fraction(m[f"baseline-{mode}"]) < 0.75
