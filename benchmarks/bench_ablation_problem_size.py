"""Ablation: problem-size scaling of the kernels.

Sweeps mesh size (cells) and extrusion depth to show (a) linear traffic
scaling, (b) the launch-latency floor that makes small Residual launches
latency-sensitive (the paper's motivation for the compile-time-bounds
loop optimization), and (c) stable speedups across sizes.
"""

import pytest

from repro.gpusim import GPUSimulator, A100, MI250X_GCD, ProblemSize
from repro.perf.report import format_table, write_csv

CELL_COUNTS = [4_000, 16_000, 64_000, 256_000, 1_024_000]


def test_ablation_problem_size(print_once, results_dir, sim_a100, sim_mi250x, benchmark):
    rows = []
    speedups = {}
    for nc in CELL_COUNTS:
        prob = ProblemSize(nc)
        for gpu, sim in (("A100", sim_a100), ("MI250X-GCD", sim_mi250x)):
            b = sim.run("baseline-residual", prob)
            o = sim.run("optimized-residual", prob)
            speedups[(gpu, nc)] = b.time_s / o.time_s
            rows.append([gpu, nc, b.time_s, o.time_s, f"{b.time_s / o.time_s:.2f}x", o.gbytes_moved])
    headers = ["GPU", "cells", "baseline [s]", "optimized [s]", "speedup", "opt GB moved"]
    print_once(
        "ablation-size",
        format_table(headers, rows, title="Ablation -- Residual kernel vs problem size"),
    )
    write_csv(results_dir / "ablation_problem_size.csv", headers, rows)

    # traffic scales linearly with cells at fixed variant
    o1 = sim_a100.run("optimized-residual", ProblemSize(64_000))
    o2 = sim_a100.run("optimized-residual", ProblemSize(128_000))
    assert o2.hbm_bytes == pytest.approx(2 * o1.hbm_bytes, rel=1e-9)

    # launch latency is a bigger share of small launches
    small = sim_mi250x.run("optimized-residual", ProblemSize(4_000))
    big = sim_mi250x.run("optimized-residual", ProblemSize(1_024_000))
    assert small.timing.launch_latency / small.time_s > big.timing.launch_latency / big.time_s

    # speedups stay in the paper's band at scale
    for gpu in ("A100", "MI250X-GCD"):
        assert 1.5 < speedups[(gpu, 256_000)] < 4.5

    benchmark(sim_a100.run, "optimized-residual", ProblemSize(256_000))


def test_ablation_layers_change_nothing_per_cell(sim_a100, benchmark):
    """Traffic is per-element: 10 vs 20 layers at equal cells is identical."""
    a = benchmark(sim_a100.run, "optimized-jacobian", ProblemSize(200_000))
    b = sim_a100.run("optimized-jacobian", ProblemSize(200_000))
    assert a.hbm_bytes == b.hbm_bytes
