"""Ablation: decompose the paper's three optimizations.

The paper applies loop fusion, compile-time bounds/branch removal and
local accumulation together; this bench separates them with the
``fused-*`` variants (fusion + branch removal, but global accumulation)
to attribute the speedup per optimization on each GPU.
"""

import pytest

from repro.perf.report import format_table, write_csv

from conftest import AMD_TUNED


@pytest.mark.parametrize("mode", ["jacobian", "residual"])
def test_ablation_optimizations(mode, sim_a100, sim_mi250x, problem, print_once, results_dir, benchmark):
    rows = []
    times = {}
    for gpu, sim in (("A100", sim_a100), ("MI250X-GCD", sim_mi250x)):
        tuned = AMD_TUNED if gpu == "MI250X-GCD" else None
        b = sim.run(f"baseline-{mode}", problem)
        f = sim.run(f"fused-{mode}", problem)
        o = sim.run(f"optimized-{mode}", problem, launch_bounds=tuned)
        times[gpu] = (b, f, o)
        rows += [
            [gpu, "baseline", b.time_s, b.gbytes_moved, "1.00x"],
            [gpu, "+fusion/branch removal", f.time_s, f.gbytes_moved, f"{b.time_s / f.time_s:.2f}x"],
            [gpu, "+local accumulation", o.time_s, o.gbytes_moved, f"{b.time_s / o.time_s:.2f}x"],
        ]
    headers = ["GPU", "variant", "time [s]", "GB moved", "speedup vs baseline"]
    print_once(
        f"ablation-opt-{mode}",
        format_table(headers, rows, title=f"Ablation -- optimization decomposition, {mode} kernel"),
    )
    write_csv(results_dir / f"ablation_optimizations_{mode}.csv", headers, rows)

    for gpu, (b, f, o) in times.items():
        # each optimization stage helps (or at least does not hurt)
        assert f.time_s <= b.time_s * 1.02, gpu
        assert o.time_s < f.time_s, gpu
        # local accumulation is where the data-movement drop comes from
        assert o.gbytes_moved <= f.gbytes_moved * (1 + 1e-12), gpu

    benchmark(sim_a100.run, f"fused-{mode}", problem)


def test_ablation_fused_matches_numerics(benchmark):
    """The ablation variant computes the same physics."""
    import numpy as np

    from repro.core import make_stokes_fields, run_kernel

    def fill(f):
        rng = np.random.default_rng(1)
        f.Ugrad.data[...] = rng.normal(size=f.Ugrad.shape) * 1e-3
        f.muLandIce.data[...] = rng.uniform(1e3, 1e5, f.muLandIce.shape)
        f.force.data[...] = rng.normal(size=f.force.shape)
        f.wBF.data[...] = rng.uniform(0.1, 1.0, f.wBF.shape)
        f.wGradBF.data[...] = rng.normal(size=f.wGradBF.shape) * 1e-3
        return f

    a = fill(make_stokes_fields(64))
    b = fill(make_stokes_fields(64))
    run_kernel("optimized-residual", a)
    benchmark(run_kernel, "fused-residual", b)
    assert np.allclose(a.Residual.values(), b.Residual.values(), rtol=1e-12)
