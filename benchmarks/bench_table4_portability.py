"""Table IV: e_time / e_DM efficiencies and the portability metric Phi.

Paper values:

==========  ==========  ========  =====  ============  ====
Impl        Efficiency  Kernel    A100   1 GCD MI250X  Phi
==========  ==========  ========  =====  ============  ====
Baseline    e_time      Jacobian  39%    38%           39%
Baseline    e_time      Residual  62%    42%           50%
Baseline    e_DM        Jacobian  53%    42%           47%
Baseline    e_DM        Residual  65%    41%           50%
Optimized   e_time      Jacobian  79%    53%           63%
Optimized   e_time      Residual  88%    60%           71%
Optimized   e_DM        Jacobian  84%    81%           83%
Optimized   e_DM        Residual  100%   100%          100%
==========  ==========  ========  =====  ============  ====

Shape criteria asserted below: every optimized efficiency beats its
baseline counterpart on every platform, optimized e_DM reaches ~1.0 for
the Residual on both GPUs, and Phi improves by >= 20 points for every
(efficiency, kernel) row -- the paper's headline "20% to 50% increment".
"""

import pytest

from repro.gpusim.specs import ALL_GPUS
from repro.perf import (
    performance_portability,
    theoretical_minimum,
    format_table,
    write_csv,
)


def _efficiencies(paper_profiles, problem):
    th = {m: theoretical_minimum(f"optimized-{m}", problem.num_cells) for m in ("jacobian", "residual")}
    rows = {}
    for (impl, mode, gpu), p in paper_profiles.items():
        peak = ALL_GPUS[gpu].hbm_bytes_per_s
        e_time = min(1.0, th[mode].min_time_s(peak) / p.time_s)
        e_dm = min(1.0, th[mode].total_bytes / p.hbm_bytes)
        rows[(impl, "e_time", mode, gpu)] = e_time
        rows[(impl, "e_DM", mode, gpu)] = e_dm
    return rows


def test_table4_report(paper_profiles, problem, print_once, results_dir, benchmark):
    eff = _efficiencies(paper_profiles, problem)

    table_rows = []
    phi = {}
    for impl in ("baseline", "optimized"):
        for metric in ("e_time", "e_DM"):
            for mode in ("jacobian", "residual"):
                ea = eff[(impl, metric, mode, "A100")]
                em = eff[(impl, metric, mode, "MI250X-GCD")]
                p = performance_portability([ea, em])
                phi[(impl, metric, mode)] = p
                table_rows.append(
                    [impl.capitalize(), metric, mode.capitalize(), f"{ea:.0%}", f"{em:.0%}", f"{p:.0%}"]
                )

    headers = ["Impl", "Efficiency", "Kernel", "A100", "1 GCD MI250X", "Phi"]
    print_once(
        "table4",
        format_table(headers, table_rows, title="Table IV (reproduced): efficiencies and Phi"),
    )
    write_csv(results_dir / "table4_portability.csv", headers, table_rows)

    # every optimized efficiency beats its baseline counterpart everywhere
    for metric in ("e_time", "e_DM"):
        for mode in ("jacobian", "residual"):
            for gpu in ("A100", "MI250X-GCD"):
                b = eff[("baseline", metric, mode, gpu)]
                o = eff[("optimized", metric, mode, gpu)]
                assert o >= b, (metric, mode, gpu)

    # optimized residual e_DM ~ 100% on both platforms (paper: 100%)
    assert eff[("optimized", "e_DM", "residual", "A100")] > 0.97
    assert eff[("optimized", "e_DM", "residual", "MI250X-GCD")] > 0.97
    # optimized jacobian e_DM >= 80% (paper: 84% / 81%)
    assert eff[("optimized", "e_DM", "jacobian", "A100")] > 0.80
    assert eff[("optimized", "e_DM", "jacobian", "MI250X-GCD")] > 0.80

    # Phi improves by >= 20 points for e_time rows and >= 15 for e_DM
    for mode in ("jacobian", "residual"):
        assert phi[("optimized", "e_time", mode)] - phi[("baseline", "e_time", mode)] >= 0.20, mode
        assert phi[("optimized", "e_DM", mode)] >= phi[("baseline", "e_DM", mode)]
    assert phi[("optimized", "e_DM", "jacobian")] - phi[("baseline", "e_DM", "jacobian")] >= 0.15

    # A100 achieves higher e_time than the MI250X GCD after optimization
    for mode in ("jacobian", "residual"):
        assert eff[("optimized", "e_time", mode, "A100")] > eff[("optimized", "e_time", mode, "MI250X-GCD")]

    benchmark(_efficiencies, paper_profiles, problem)


def test_phi_zero_when_unsupported(benchmark):
    """Eq. 4: Phi collapses to zero if any platform is unsupported."""
    assert benchmark(performance_portability, [0.9, None]) == 0.0
