"""Solver hot path: Newton steps/sec and phase breakdown, fused vs unfused.

The fused assembly path extracts residual and Jacobian from a single
SFad workset sweep and fills a cached sparsity plan (symbolic assembly
done once), so each Newton step pays one DAG evaluation plus a pure
numeric scatter.  This bench runs the small synthetic Antarctica both
ways and reports:

- Newton steps per second (end-to-end ``StokesVelocityProblem.solve``),
- the per-phase wall-time split (evaluate / scatter / preconditioner /
  gmres) from ``VelocitySolution.diagnostics["phase_seconds"]``,
- the evaluator-DAG sweep counts per mode, which pin the fusion
  invariant: one jacobian sweep per accepted step, one residual sweep
  per line-search trial (plus the initial residual).

Wall time comes from the observability span tracer rather than an ad-hoc
``perf_counter`` pair: each variant's solve runs inside an
``obs.tracing()`` session, the end-to-end number is the ``bench.solve``
span, and the recorded span aggregate plus the solve's own
``diagnostics["observability"]`` snapshot land in the JSON artifact.

A second section compares the two ``operator_mode`` settings of the
Newton--Krylov hot path: ``assembled`` (CSR fill + SpMV matvecs + MGS
orthogonalization) vs ``matrix-free`` (element-block apply + fused
batched-CGS orthogonalization).  Both run with the weak Jacobi
preconditioner so the Krylov depths are representative of the
bandwidth-bound regime the fusion targets; the modeled HBM bytes per
GMRES iteration come from the ``gmres.{matvec,stream}.bytes.*``
counters, and the matrix-free mode must move strictly fewer.

Artifacts land in ``benchmarks/results/solver_hotpath.{json,csv}`` and
the combined report (including the measured data-movement win) in
``BENCH_hotpath.json`` at the repo root, plus the normalized
perf-trajectory ``BENCH_solver.json`` that ``tools/check_bench.py``
diffs against the committed baseline in CI (deterministic counters are
hard-gated, wall seconds are advisory).  Run standalone for a quick
smoke (well under a minute)::

    PYTHONPATH=src python benchmarks/bench_solver_hotpath.py
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from repro import observability as obs
from repro.app.antarctica import AntarcticaTest
from repro.app.config import AntarcticaConfig, VelocityConfig
from repro.perf.report import format_table, write_csv

#: small enough that both variants finish in seconds, large enough that
#: the assembly/solve phases dominate interpreter overhead
SMOKE_CONFIG = AntarcticaConfig(
    resolution_km=400.0,
    num_layers=4,
    velocity=VelocityConfig(),
)

PHASES = ("evaluate", "scatter", "preconditioner", "gmres")


def run_hotpath(config: AntarcticaConfig = SMOKE_CONFIG) -> dict:
    """Solve the configured Antarctica with and without fused assembly."""
    out = {}
    # warmup: first-touch BLAS/ufunc initialization otherwise lands in
    # whichever variant runs first and skews the phase split
    AntarcticaTest.build(
        replace(config, resolution_km=2.0 * config.resolution_km, num_layers=2)
    ).run()
    for fused in (True, False):
        cfg = replace(config, velocity=replace(config.velocity, fused_assembly=fused))
        test = AntarcticaTest.build(cfg)
        obs.get_metrics().reset()  # per-variant snapshot, not cumulative
        with obs.tracing() as tracer:
            with tracer.span("bench.solve", variant="fused" if fused else "unfused") as sp:
                sol = test.run()
        d = sol.diagnostics
        out["fused" if fused else "unfused"] = {
            "wall_seconds": sp.dur_s,
            "solve_seconds": d["solve_seconds"],
            "newton_steps": sol.newton.iterations,
            "newton_steps_per_s": d["newton_steps_per_s"],
            "phase_seconds": d["phase_seconds"],
            "eval_sweeps": d["eval_sweeps"],
            "mean_velocity": sol.mean_velocity,
            "span_totals": {
                name: agg["total_s"] for name, agg in tracer.aggregate().items()
            },
            # full per-span aggregate (count + inclusive + self seconds):
            # the trajectory artifact's "spans" section, which perfdiff
            # consumes when the CI perf-gate trips
            "span_aggregate": {
                name: {
                    "count": agg["count"],
                    "total_s": agg["total_s"],
                    "self_s": agg["self_s"],
                }
                for name, agg in tracer.aggregate().items()
            },
            "observability": d["observability"],
        }
    out["speedup"] = out["unfused"]["solve_seconds"] / out["fused"]["solve_seconds"]
    return out


def run_operator_modes(config: AntarcticaConfig = SMOKE_CONFIG) -> dict:
    """Solve with assembled vs matrix-free operators; report modeled bytes.

    The Jacobi preconditioner is deliberately weak: deep Krylov cycles
    are where the byte model separates the modes (fused
    orthogonalization streams each basis vector once per iteration
    instead of ``k`` times, and the element apply skips the CSR
    value/index streams).
    """
    out = {}
    for mode in ("assembled", "matrix-free"):
        cfg = replace(
            config,
            velocity=replace(
                config.velocity, operator_mode=mode, preconditioner="jacobi"
            ),
        )
        test = AntarcticaTest.build(cfg)
        obs.get_metrics().reset()
        with obs.tracing() as tracer:
            with tracer.span("bench.solve", variant=mode) as sp:
                sol = test.run()
        d = sol.diagnostics
        counters = d["observability"]["metrics"]["counters"]
        gmres_iters = sum(sol.newton.linear_iterations)
        matvec_bytes = counters.get(f"gmres.matvec.bytes.{mode}", 0.0)
        stream_bytes = counters.get(f"gmres.stream.bytes.{mode}", 0.0)
        out[mode] = {
            "wall_seconds": sp.dur_s,
            "solve_seconds": d["solve_seconds"],
            "newton_steps": sol.newton.iterations,
            "gmres_iterations": gmres_iters,
            "gmres_matvecs": counters.get("gmres.matvecs", 0.0),
            "gmres_orth": d["gmres_orth"],
            "matvec_bytes": matvec_bytes,
            "stream_bytes": stream_bytes,
            "bytes_per_iteration": (matvec_bytes + stream_bytes) / max(1, gmres_iters),
            "mean_velocity": sol.mean_velocity,
        }
    out["bytes_per_iteration_ratio"] = (
        out["matrix-free"]["bytes_per_iteration"]
        / out["assembled"]["bytes_per_iteration"]
    )
    return out


MODE_HEADERS = [
    "Mode",
    "Orth",
    "Solve [s]",
    "GMRES its",
    "Matvecs",
    "Matvec bytes",
    "Stream bytes",
    "Bytes/iter",
]


def _mode_rows(modes: dict) -> list[list]:
    return [
        [
            mode,
            modes[mode]["gmres_orth"],
            modes[mode]["solve_seconds"],
            modes[mode]["gmres_iterations"],
            modes[mode]["gmres_matvecs"],
            modes[mode]["matvec_bytes"],
            modes[mode]["stream_bytes"],
            modes[mode]["bytes_per_iteration"],
        ]
        for mode in ("assembled", "matrix-free")
    ]


def _check_mode_report(modes: dict) -> None:
    """The acceptance assertions shared by pytest and standalone runs."""
    a, m = modes["assembled"], modes["matrix-free"]
    # both modes converge to the same physics (goldens tolerance)
    assert abs(m["mean_velocity"] - a["mean_velocity"]) <= 1.0e-5 * abs(
        a["mean_velocity"]
    )
    # the headline: the matrix-free hot path moves fewer modeled bytes
    # per GMRES iteration than the assembled SpMV + MGS path
    assert m["bytes_per_iteration"] < a["bytes_per_iteration"], (
        f"matrix-free bytes/iter {m['bytes_per_iteration']:.3e} not below "
        f"assembled {a['bytes_per_iteration']:.3e}"
    )
    assert a["matvec_bytes"] > 0.0 and m["matvec_bytes"] > 0.0


#: schema of the normalized CI perf-trajectory artifact; bump when the
#: layout changes so tools/check_bench.py refuses to diff across schemas
#: (2: added the "spans" per-span time aggregate for perfdiff)
BENCH_SOLVER_SCHEMA = 2


def solver_trajectory(report: dict, modes: dict) -> dict:
    """The normalized ``BENCH_solver.json`` payload.

    Two signal classes, with the gate contract encoded in the layout
    (see DESIGN.md section 14): everything under ``"deterministic"`` is
    a reproducible counter (iterations, modeled bytes, sweep counts --
    lower is better) that ``tools/check_bench.py`` hard-fails on;
    everything under ``"advisory"`` is wall-clock (machine-dependent)
    and only ever warns.  The ``"spans"`` section (schema 2) carries the
    fused variant's per-span time aggregate -- ignored by the gate's
    leaf diff, but ``python -m repro perfdiff`` reads it to attribute a
    tripped gate to specific solver phases.
    """
    det = {
        "newton": {},
        "gmres": {},
    }
    for variant in ("fused", "unfused"):
        r = report[variant]
        det["newton"][variant] = {
            "newton_steps": r["newton_steps"],
            "eval_sweeps_residual": r["eval_sweeps"]["residual"],
            "eval_sweeps_jacobian": r["eval_sweeps"]["jacobian"],
        }
    for mode in ("assembled", "matrix-free"):
        m = modes[mode]
        det["gmres"][mode] = {
            "gmres_iterations": m["gmres_iterations"],
            "gmres_matvecs": m["gmres_matvecs"],
            "matvec_bytes": m["matvec_bytes"],
            "stream_bytes": m["stream_bytes"],
            "bytes_per_iteration": m["bytes_per_iteration"],
        }
    det["bytes_per_iteration_ratio"] = modes["bytes_per_iteration_ratio"]
    advisory = {
        "fused_solve_seconds": report["fused"]["solve_seconds"],
        "unfused_solve_seconds": report["unfused"]["solve_seconds"],
        "assembled_solve_seconds": modes["assembled"]["solve_seconds"],
        "matrix_free_solve_seconds": modes["matrix-free"]["solve_seconds"],
        "fused_speedup": report["speedup"],
    }
    return {
        "bench": "solver_hotpath",
        "schema_version": BENCH_SOLVER_SCHEMA,
        "config": {
            "resolution_km": SMOKE_CONFIG.resolution_km,
            "num_layers": SMOKE_CONFIG.num_layers,
            "operator_mode_preconditioner": "jacobi",
        },
        "deterministic": det,
        "advisory": advisory,
        "spans": report["fused"]["span_aggregate"],
    }


def _write_solver_trajectory(report: dict, modes: dict, out: Path | None = None) -> Path:
    """``BENCH_solver.json`` at the repo root: the perf-gate trajectory."""
    path = out if out is not None else Path(__file__).parents[1] / "BENCH_solver.json"
    path.write_text(json.dumps(solver_trajectory(report, modes), indent=2) + "\n")
    return path


def _write_root_artifact(report: dict, modes: dict) -> Path:
    """``BENCH_hotpath.json`` at the repo root: the CI-consumed summary."""
    path = Path(__file__).parents[1] / "BENCH_hotpath.json"
    payload = {
        "bench": "solver_hotpath",
        "config": {
            "resolution_km": SMOKE_CONFIG.resolution_km,
            "num_layers": SMOKE_CONFIG.num_layers,
            "operator_mode_preconditioner": "jacobi",
        },
        "fused_vs_unfused": {
            "speedup": report["speedup"],
            "fused_solve_seconds": report["fused"]["solve_seconds"],
            "unfused_solve_seconds": report["unfused"]["solve_seconds"],
        },
        "operator_modes": modes,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _rows(report: dict) -> list[list]:
    rows = []
    for variant in ("fused", "unfused"):
        r = report[variant]
        rows.append(
            [
                variant,
                r["solve_seconds"],
                r["newton_steps_per_s"],
                *[r["phase_seconds"][p] for p in PHASES],
                r["eval_sweeps"]["residual"],
                r["eval_sweeps"]["jacobian"],
            ]
        )
    return rows


HEADERS = [
    "Variant",
    "Solve [s]",
    "Steps/s",
    "Evaluate [s]",
    "Scatter [s]",
    "Precond [s]",
    "GMRES [s]",
    "Res sweeps",
    "Jac sweeps",
]


def test_solver_hotpath_report(print_once, results_dir, benchmark):
    report = run_hotpath()
    rows = _rows(report)
    print_once(
        "solver_hotpath",
        format_table(
            HEADERS,
            rows,
            title="Solver hot path: fused vs unfused assembly "
            f"(speedup {report['speedup']:.2f}x)",
        ),
    )
    modes = run_operator_modes()
    print_once(
        "solver_hotpath_modes",
        format_table(
            MODE_HEADERS,
            _mode_rows(modes),
            title="Operator modes: assembled vs matrix-free "
            f"(bytes/iter ratio {modes['bytes_per_iteration_ratio']:.2f}x)",
        ),
    )
    write_csv(results_dir / "solver_hotpath.csv", HEADERS, rows)
    (results_dir / "solver_hotpath.json").write_text(json.dumps(report, indent=2) + "\n")
    _check_mode_report(modes)
    _write_root_artifact(report, modes)
    _write_solver_trajectory(report, modes)

    fused, unfused = report["fused"], report["unfused"]
    # both variants converge to the same physics
    assert abs(fused["mean_velocity"] - unfused["mean_velocity"]) <= 1.0e-8 * abs(
        unfused["mean_velocity"]
    )
    # fusion removes the per-step residual-mode sweep: the fused run does
    # strictly fewer residual sweeps while jacobian sweeps stay put
    assert fused["eval_sweeps"]["jacobian"] == unfused["eval_sweeps"]["jacobian"]
    assert fused["eval_sweeps"]["residual"] < unfused["eval_sweeps"]["residual"]
    # phase instrumentation covers the bulk of the solve wall time
    for variant in (fused, unfused):
        phase_sum = sum(variant["phase_seconds"].values())
        assert 0.0 < phase_sum <= variant["solve_seconds"] * 1.05

    # the benchmarked operation: one fused end-to-end solve
    test = AntarcticaTest.build(SMOKE_CONFIG)
    benchmark(test.problem.solve)


def main() -> int:
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    report = run_hotpath()
    print(
        format_table(
            HEADERS,
            _rows(report),
            title="Solver hot path: fused vs unfused assembly "
            f"(speedup {report['speedup']:.2f}x)",
        )
    )
    modes = run_operator_modes()
    print(
        format_table(
            MODE_HEADERS,
            _mode_rows(modes),
            title="Operator modes: assembled vs matrix-free "
            f"(bytes/iter ratio {modes['bytes_per_iteration_ratio']:.2f}x)",
        )
    )
    write_csv(results_dir / "solver_hotpath.csv", HEADERS, _rows(report))
    (results_dir / "solver_hotpath.json").write_text(json.dumps(report, indent=2) + "\n")
    _check_mode_report(modes)
    root_artifact = _write_root_artifact(report, modes)
    trajectory = _write_solver_trajectory(report, modes)
    print(
        f"artifacts: {results_dir / 'solver_hotpath.json'}, "
        f"{root_artifact}, {trajectory}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
