"""Solver hot path: Newton steps/sec and phase breakdown, fused vs unfused.

The fused assembly path extracts residual and Jacobian from a single
SFad workset sweep and fills a cached sparsity plan (symbolic assembly
done once), so each Newton step pays one DAG evaluation plus a pure
numeric scatter.  This bench runs the small synthetic Antarctica both
ways and reports:

- Newton steps per second (end-to-end ``StokesVelocityProblem.solve``),
- the per-phase wall-time split (evaluate / scatter / preconditioner /
  gmres) from ``VelocitySolution.diagnostics["phase_seconds"]``,
- the evaluator-DAG sweep counts per mode, which pin the fusion
  invariant: one jacobian sweep per accepted step, one residual sweep
  per line-search trial (plus the initial residual).

Wall time comes from the observability span tracer rather than an ad-hoc
``perf_counter`` pair: each variant's solve runs inside an
``obs.tracing()`` session, the end-to-end number is the ``bench.solve``
span, and the recorded span aggregate plus the solve's own
``diagnostics["observability"]`` snapshot land in the JSON artifact.

Artifacts land in ``benchmarks/results/solver_hotpath.{json,csv}``.
Run standalone for a quick smoke (well under a minute)::

    PYTHONPATH=src python benchmarks/bench_solver_hotpath.py
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from repro import observability as obs
from repro.app.antarctica import AntarcticaTest
from repro.app.config import AntarcticaConfig, VelocityConfig
from repro.perf.report import format_table, write_csv

#: small enough that both variants finish in seconds, large enough that
#: the assembly/solve phases dominate interpreter overhead
SMOKE_CONFIG = AntarcticaConfig(
    resolution_km=400.0,
    num_layers=4,
    velocity=VelocityConfig(),
)

PHASES = ("evaluate", "scatter", "preconditioner", "gmres")


def run_hotpath(config: AntarcticaConfig = SMOKE_CONFIG) -> dict:
    """Solve the configured Antarctica with and without fused assembly."""
    out = {}
    # warmup: first-touch BLAS/ufunc initialization otherwise lands in
    # whichever variant runs first and skews the phase split
    AntarcticaTest.build(
        replace(config, resolution_km=2.0 * config.resolution_km, num_layers=2)
    ).run()
    for fused in (True, False):
        cfg = replace(config, velocity=replace(config.velocity, fused_assembly=fused))
        test = AntarcticaTest.build(cfg)
        obs.get_metrics().reset()  # per-variant snapshot, not cumulative
        with obs.tracing() as tracer:
            with tracer.span("bench.solve", variant="fused" if fused else "unfused") as sp:
                sol = test.run()
        d = sol.diagnostics
        out["fused" if fused else "unfused"] = {
            "wall_seconds": sp.dur_s,
            "solve_seconds": d["solve_seconds"],
            "newton_steps": sol.newton.iterations,
            "newton_steps_per_s": d["newton_steps_per_s"],
            "phase_seconds": d["phase_seconds"],
            "eval_sweeps": d["eval_sweeps"],
            "mean_velocity": sol.mean_velocity,
            "span_totals": {
                name: agg["total_s"] for name, agg in tracer.aggregate().items()
            },
            "observability": d["observability"],
        }
    out["speedup"] = out["unfused"]["solve_seconds"] / out["fused"]["solve_seconds"]
    return out


def _rows(report: dict) -> list[list]:
    rows = []
    for variant in ("fused", "unfused"):
        r = report[variant]
        rows.append(
            [
                variant,
                r["solve_seconds"],
                r["newton_steps_per_s"],
                *[r["phase_seconds"][p] for p in PHASES],
                r["eval_sweeps"]["residual"],
                r["eval_sweeps"]["jacobian"],
            ]
        )
    return rows


HEADERS = [
    "Variant",
    "Solve [s]",
    "Steps/s",
    "Evaluate [s]",
    "Scatter [s]",
    "Precond [s]",
    "GMRES [s]",
    "Res sweeps",
    "Jac sweeps",
]


def test_solver_hotpath_report(print_once, results_dir, benchmark):
    report = run_hotpath()
    rows = _rows(report)
    print_once(
        "solver_hotpath",
        format_table(
            HEADERS,
            rows,
            title="Solver hot path: fused vs unfused assembly "
            f"(speedup {report['speedup']:.2f}x)",
        ),
    )
    write_csv(results_dir / "solver_hotpath.csv", HEADERS, rows)
    (results_dir / "solver_hotpath.json").write_text(json.dumps(report, indent=2) + "\n")

    fused, unfused = report["fused"], report["unfused"]
    # both variants converge to the same physics
    assert abs(fused["mean_velocity"] - unfused["mean_velocity"]) <= 1.0e-8 * abs(
        unfused["mean_velocity"]
    )
    # fusion removes the per-step residual-mode sweep: the fused run does
    # strictly fewer residual sweeps while jacobian sweeps stay put
    assert fused["eval_sweeps"]["jacobian"] == unfused["eval_sweeps"]["jacobian"]
    assert fused["eval_sweeps"]["residual"] < unfused["eval_sweeps"]["residual"]
    # phase instrumentation covers the bulk of the solve wall time
    for variant in (fused, unfused):
        phase_sum = sum(variant["phase_seconds"].values())
        assert 0.0 < phase_sum <= variant["solve_seconds"] * 1.05

    # the benchmarked operation: one fused end-to-end solve
    test = AntarcticaTest.build(SMOKE_CONFIG)
    benchmark(test.problem.solve)


def main() -> int:
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    report = run_hotpath()
    print(
        format_table(
            HEADERS,
            _rows(report),
            title="Solver hot path: fused vs unfused assembly "
            f"(speedup {report['speedup']:.2f}x)",
        )
    )
    write_csv(results_dir / "solver_hotpath.csv", HEADERS, _rows(report))
    (results_dir / "solver_hotpath.json").write_text(json.dumps(report, indent=2) + "\n")
    print(f"artifacts: {results_dir / 'solver_hotpath.json'}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
