"""Ablation: L2 capacity vs baseline data movement.

The paper credits the A100/MI250X baseline-efficiency gap to cache
capacity (40 MB vs 8 MB L2).  This bench sweeps L2 size on the MI250X
machine model and shows baseline Jacobian traffic falling toward the
theoretical minimum as the cache grows -- the mechanism behind the
cross-GPU e_DM story.
"""

import dataclasses

import pytest

from repro.gpusim import GPUSimulator, MI250X_GCD
from repro.perf import theoretical_minimum, format_table, write_csv

L2_SIZES_MB = [2, 4, 8, 16, 40, 80]


def test_ablation_l2_capacity(problem, print_once, results_dir, benchmark):
    th = theoretical_minimum("optimized-jacobian", problem.num_cells)
    rows = []
    traffic = []
    for mb in L2_SIZES_MB:
        spec = dataclasses.replace(MI250X_GCD, name=f"MI250X-L2-{mb}MB", l2_bytes=mb * 1024 * 1024)
        p = GPUSimulator(spec).run("baseline-jacobian", problem)
        e_dm = th.total_bytes / p.hbm_bytes
        traffic.append(p.hbm_bytes)
        rows.append([f"{mb} MB", p.gbytes_moved, f"{e_dm:.0%}", p.time_s])
    headers = ["L2 size", "GB moved (baseline Jacobian)", "e_DM", "time [s]"]
    print_once(
        "ablation-l2",
        format_table(headers, rows, title="Ablation -- L2 capacity vs baseline data movement (MI250X model)"),
    )
    write_csv(results_dir / "ablation_l2_capacity.csv", headers, rows)

    # monotone: more cache -> never more traffic, and the sweep must
    # actually exercise the capacity effect
    assert all(a >= b for a, b in zip(traffic, traffic[1:]))
    assert traffic[0] > 1.15 * traffic[-1]
    # traffic never drops below the application bound
    assert traffic[-1] >= th.total_bytes * 0.999

    spec = dataclasses.replace(MI250X_GCD, l2_bytes=16 * 1024 * 1024)
    benchmark(GPUSimulator(spec).run, "baseline-jacobian", problem)


def test_ablation_occupancy_interleave(problem, benchmark):
    """More co-resident warps -> more interleave-induced L2 thrash."""
    base = benchmark(GPUSimulator(MI250X_GCD).run, "baseline-jacobian", problem)
    calmer = dataclasses.replace(MI250X_GCD, interleave_l2=MI250X_GCD.interleave_l2 / 4)
    calm = GPUSimulator(calmer).run("baseline-jacobian", problem)
    assert calm.hbm_bytes <= base.hbm_bytes
